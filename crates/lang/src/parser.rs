//! Recursive-descent parser for the paper's surface syntax.
//!
//! Top-level grammar (semicolon-terminated items):
//!
//! ```text
//! param n, m;
//! input u (1,n);
//! let a = array (1,n) [ i := i*i | i <- [1..n] ];
//! letrec* a = array ((1,1),(n,n)) [* ... *] and b = array ... ;
//! b = bigupd a [* ... *];
//! result a, b;
//! ```
//!
//! Comprehensions come in the ordinary flavor
//! `[ s := v, s2 := v2 | quals ]` and the paper's *nested* flavor
//! `[* listexpr | quals *]` whose body is itself a list expression built
//! from `++`, `where`, and further comprehensions. Generators are
//! arithmetic sequences `i <- [lo..hi]` or `i <- [a,b..hi]` (the step
//! `b - a` must fold to a nonzero integer constant).
//!
//! Subscripts left of `:=` are either a parenthesized tuple `(i,j)` or a
//! single arithmetic expression (`3*i-2`).

use std::fmt;

use crate::ast::{ArrayDef, ArrayKind, BinOp, Binding, Comp, Expr, Program, Range, SvClause, UnOp};
use crate::env::ConstEnv;
use crate::lexer::{lex, LexError, SpannedTok, Tok};

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a whole program. Clause and loop ids are **not** assigned here;
/// run [`crate::number::number_clauses`] (the pipeline does this).
///
/// # Errors
/// Returns [`ParseError`] describing the first offending token.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    p.program()
}

/// Parse a single list-comprehension expression (useful in tests).
///
/// # Errors
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_comp(src: &str) -> Result<Comp, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let c = p.listexpr()?;
    p.expect_eof()?;
    Ok(c)
}

/// Parse a single scalar expression (useful in tests).
///
/// # Errors
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum recursion depth for nested expressions/comprehensions; a
/// guard, not a grammar limit (scientific programs nest shallowly).
const MAX_DEPTH: u32 = 128;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "end of input".into());
            self.err(format!("expected `{t}`, found `{found}`"))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            self.err(format!(
                "unexpected trailing token `{}`",
                self.toks[self.pos].tok
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(other) => self.err(format!("expected identifier, found `{other}`")),
            None => self.err("expected identifier, found end of input"),
        }
    }

    // ---------------- program structure ----------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while self.peek().is_some() {
            match self.peek().unwrap() {
                Tok::Param => {
                    self.bump();
                    loop {
                        prog.params.push(self.ident()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::Semi)?;
                }
                Tok::Input => {
                    self.bump();
                    let name = self.ident()?;
                    let bounds = self.bounds()?;
                    self.expect(&Tok::Semi)?;
                    prog.bindings.push(Binding::Input { name, bounds });
                }
                Tok::Result => {
                    self.bump();
                    loop {
                        prog.results.push(self.ident()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::Semi)?;
                }
                Tok::Let => {
                    self.bump();
                    // `let name = reduce (...)` / `sum` / `product`
                    // bind scalars; everything else is an array def.
                    if let (Some(Tok::Ident(_)), Some(Tok::Equals)) = (self.peek(), self.peek2()) {
                        if matches!(
                            self.toks.get(self.pos + 2).map(|t| &t.tok),
                            Some(Tok::Ident(k)) if k == "reduce" || k == "sum" || k == "product"
                        ) {
                            let binding = self.reduce_binding()?;
                            self.expect(&Tok::Semi)?;
                            prog.bindings.push(binding);
                            continue;
                        }
                    }
                    let def = self.array_def()?;
                    self.expect(&Tok::Semi)?;
                    prog.bindings.push(Binding::Let(def));
                }
                Tok::LetrecStar => {
                    self.bump();
                    let mut defs = vec![self.array_def()?];
                    while self.eat(&Tok::And) {
                        defs.push(self.array_def()?);
                    }
                    self.expect(&Tok::Semi)?;
                    prog.bindings.push(Binding::LetrecStar(defs));
                }
                Tok::Ident(_) => {
                    // `name = bigupd base comp ;`
                    let name = self.ident()?;
                    self.expect(&Tok::Equals)?;
                    self.expect(&Tok::BigUpd)?;
                    let base = self.ident()?;
                    let comp = self.listexpr()?;
                    self.expect(&Tok::Semi)?;
                    prog.bindings.push(Binding::BigUpd { name, base, comp });
                }
                other => {
                    let other = other.clone();
                    return self.err(format!("unexpected token `{other}` at top level"));
                }
            }
        }
        Ok(prog)
    }

    /// `name = reduce (op) init [ expr | quals ]` or the `sum` /
    /// `product` sugar.
    fn reduce_binding(&mut self) -> Result<Binding, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::Equals)?;
        let kw = self.ident()?;
        let (op, init) = match kw.as_str() {
            "sum" => (BinOp::Add, Expr::Num(0.0)),
            "product" => (BinOp::Mul, Expr::Num(1.0)),
            "reduce" => {
                self.expect(&Tok::LParen)?;
                let op = match self.bump() {
                    Some(Tok::Plus) => BinOp::Add,
                    Some(Tok::Star) => BinOp::Mul,
                    Some(Tok::Minus) => BinOp::Sub,
                    Some(Tok::Min) => BinOp::Min,
                    Some(Tok::Max) => BinOp::Max,
                    Some(other) => {
                        return self.err(format!("unsupported reduction operator `{other}`"))
                    }
                    None => return self.err("expected reduction operator"),
                };
                self.expect(&Tok::RParen)?;
                let init = self.atom()?;
                (op, init)
            }
            other => return self.err(format!("expected reduce/sum/product, found `{other}`")),
        };
        let comp = self.scalar_comp()?;
        Ok(Binding::Reduce {
            name,
            op,
            init,
            comp,
        })
    }

    /// `[ expr | quals ]` (++-joinable) — a comprehension of scalar
    /// values; each element becomes a subscript-less clause.
    fn scalar_comp(&mut self) -> Result<Comp, ParseError> {
        let mut terms = Vec::new();
        loop {
            self.expect(&Tok::LBracket)?;
            let value = self.expr()?;
            let body = Comp::Clause(SvClause::new(vec![], value));
            let term = if self.eat(&Tok::Bar) {
                let quals = self.quals()?;
                self.expect(&Tok::RBracket)?;
                wrap_quals(body, quals)
            } else {
                self.expect(&Tok::RBracket)?;
                body
            };
            terms.push(term);
            if !self.eat(&Tok::PlusPlus) {
                break;
            }
        }
        Ok(Comp::append(terms))
    }

    fn array_def(&mut self) -> Result<ArrayDef, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::Equals)?;
        match self.peek() {
            Some(Tok::Array) => {
                self.bump();
                let bounds = self.bounds()?;
                let comp = self.listexpr()?;
                Ok(ArrayDef {
                    name,
                    bounds,
                    comp,
                    kind: ArrayKind::Monolithic,
                })
            }
            Some(Tok::AccumArray) => {
                self.bump();
                // accumArray (+) 0 (1,n) [...]
                self.expect(&Tok::LParen)?;
                let (combine, commutative) = match self.bump() {
                    Some(Tok::Plus) => (BinOp::Add, true),
                    Some(Tok::Star) => (BinOp::Mul, true),
                    Some(Tok::Min) => (BinOp::Min, true),
                    Some(Tok::Max) => (BinOp::Max, true),
                    Some(Tok::Minus) => (BinOp::Sub, false),
                    Some(other) => {
                        return self.err(format!("unsupported combining operator `{other}`"))
                    }
                    None => return self.err("expected combining operator"),
                };
                self.expect(&Tok::RParen)?;
                let default = self.atom()?;
                let bounds = self.bounds()?;
                let comp = self.listexpr()?;
                Ok(ArrayDef {
                    name,
                    bounds,
                    comp,
                    kind: ArrayKind::Accumulated {
                        combine,
                        default,
                        commutative,
                    },
                })
            }
            _ => self.err("expected `array` or `accumArray`"),
        }
    }

    /// Haskell-style bounds: `(1,n)` for 1-D, or a pair of corner
    /// tuples `((1,1),(n,m))` = `((lo₁,lo₂),(hi₁,hi₂))` for multi-D.
    fn bounds(&mut self) -> Result<Vec<(Expr, Expr)>, ParseError> {
        self.expect(&Tok::LParen)?;
        if self.peek() == Some(&Tok::LParen) {
            let tuple = |p: &mut Self| -> Result<Vec<Expr>, ParseError> {
                p.expect(&Tok::LParen)?;
                let mut out = vec![p.expr()?];
                while p.eat(&Tok::Comma) {
                    out.push(p.expr()?);
                }
                p.expect(&Tok::RParen)?;
                Ok(out)
            };
            let lows = tuple(self)?;
            self.expect(&Tok::Comma)?;
            let highs = tuple(self)?;
            self.expect(&Tok::RParen)?;
            if lows.len() != highs.len() {
                return self.err(format!(
                    "bounds corners have different arities ({} vs {})",
                    lows.len(),
                    highs.len()
                ));
            }
            Ok(lows.into_iter().zip(highs).collect())
        } else {
            let lo = self.expr()?;
            self.expect(&Tok::Comma)?;
            let hi = self.expr()?;
            self.expect(&Tok::RParen)?;
            Ok(vec![(lo, hi)])
        }
    }

    // ---------------- comprehensions ----------------

    /// `listterm (++ listterm)*`
    fn listexpr(&mut self) -> Result<Comp, ParseError> {
        let mut guard = self.enter()?;
        let this = &mut *guard;
        let mut terms = vec![this.listterm()?];
        while this.eat(&Tok::PlusPlus) {
            terms.push(this.listterm()?);
        }
        Ok(Comp::append(terms))
    }

    fn listterm(&mut self) -> Result<Comp, ParseError> {
        let mut term = match self.peek() {
            Some(Tok::LBracket) => {
                self.bump();
                // ordinary comprehension or plain clause list
                let mut clauses = vec![self.svpair()?];
                while self.eat(&Tok::Comma) {
                    clauses.push(self.svpair()?);
                }
                let body = Comp::append(clauses);
                if self.eat(&Tok::Bar) {
                    let quals = self.quals()?;
                    self.expect(&Tok::RBracket)?;
                    wrap_quals(body, quals)
                } else {
                    self.expect(&Tok::RBracket)?;
                    body
                }
            }
            Some(Tok::LStarBracket) => {
                self.bump();
                let body = self.listexpr()?;
                let comp = if self.eat(&Tok::Bar) {
                    let quals = self.quals()?;
                    wrap_quals(body, quals)
                } else {
                    body
                };
                self.expect(&Tok::StarRBracket)?;
                comp
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.listexpr()?;
                self.expect(&Tok::RParen)?;
                inner
            }
            _ => return self.err("expected `[`, `[*` or `(` to begin a list expression"),
        };
        // postfix `where` binds common subexpressions over the term
        if self.eat(&Tok::Where) {
            let binds = self.binds()?;
            term = Comp::Let {
                binds,
                body: Box::new(term),
            };
        }
        Ok(term)
    }

    /// `subscripts := value (where binds)?`
    fn svpair(&mut self) -> Result<Comp, ParseError> {
        let subs = if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let mut subs = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                subs.push(self.expr()?);
            }
            self.expect(&Tok::RParen)?;
            subs
        } else {
            vec![self.expr()?]
        };
        self.expect(&Tok::Assign)?;
        let value = self.expr()?;
        let clause = Comp::Clause(SvClause::new(subs, value));
        if self.eat(&Tok::Where) {
            let binds = self.binds()?;
            Ok(Comp::Let {
                binds,
                body: Box::new(clause),
            })
        } else {
            Ok(clause)
        }
    }

    fn quals(&mut self) -> Result<Vec<Qual>, ParseError> {
        let mut out = vec![self.qual()?];
        while self.eat(&Tok::Comma) {
            out.push(self.qual()?);
        }
        Ok(out)
    }

    fn qual(&mut self) -> Result<Qual, ParseError> {
        if let (Some(Tok::Ident(_)), Some(Tok::Arrow)) = (self.peek(), self.peek2()) {
            let var = self.ident()?;
            self.expect(&Tok::Arrow)?;
            self.expect(&Tok::LBracket)?;
            let first = self.expr()?;
            let (lo, step) = if self.eat(&Tok::Comma) {
                let second = self.expr()?;
                let step = self.constant_step(&first, &second)?;
                (first, step)
            } else {
                (first, 1)
            };
            self.expect(&Tok::DotDot)?;
            let hi = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Ok(Qual::Gen {
                var,
                range: Range { lo, hi, step },
            })
        } else if self.eat(&Tok::Let) {
            let binds = self.binds()?;
            Ok(Qual::Let(binds))
        } else {
            Ok(Qual::Guard(self.expr()?))
        }
    }

    /// Fold `second - first` to the constant generator step.
    fn constant_step(&self, first: &Expr, second: &Expr) -> Result<i64, ParseError> {
        use crate::affine::Affine;
        let env = ConstEnv::new();
        let diff = Affine::from_expr(second, &env)
            .zip(Affine::from_expr(first, &env))
            .map(|(s, f)| s.sub(&f));
        match diff {
            Some(d) if d.is_constant() && d.constant_part() != 0 => Ok(d.constant_part()),
            _ => self.err(
                "generator step (second element minus first) must fold to a nonzero \
                 integer constant",
            ),
        }
    }

    fn binds(&mut self) -> Result<Vec<(String, Expr)>, ParseError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(&Tok::Equals)?;
            let e = self.expr()?;
            out.push((name, e));
            if !self.eat(&Tok::Semi) {
                break;
            }
            // Allow a trailing semicolon before `in`.
            if !matches!(self.peek(), Some(Tok::Ident(_))) {
                break;
            }
            // `x = e ; y = e2` continues; `x = e ;` then non-ident stops.
            if self.peek2() != Some(&Tok::Equals) {
                break;
            }
        }
        Ok(out)
    }

    fn enter(&mut self) -> Result<DepthGuard<'_>, ParseError> {
        if self.depth >= MAX_DEPTH {
            return self.err(format!("expression nests deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        Ok(DepthGuard { parser: self })
    }

    // ---------------- scalar expressions ----------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut guard = self.enter()?;
        let this = &mut *guard;
        match this.peek() {
            Some(Tok::If) => {
                this.bump();
                let cond = this.expr()?;
                this.expect(&Tok::Then)?;
                let then = this.expr()?;
                this.expect(&Tok::Else)?;
                let els = this.expr()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                })
            }
            Some(Tok::Let) => {
                this.bump();
                let binds = this.binds()?;
                this.expect(&Tok::In)?;
                let body = this.expr()?;
                Ok(Expr::Let {
                    binds,
                    body: Box::new(body),
                })
            }
            _ => this.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Mod) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                let e = self.unary()?;
                // Fold negated literals so `-1` is the literal −1 (and
                // printing round-trips structurally).
                Ok(match e {
                    Expr::Int(v) => Expr::Int(-v),
                    Expr::Num(v) => Expr::Num(-v),
                    other => Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(other),
                    },
                })
            }
            Some(Tok::Not) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                })
            }
            _ => self.postfix(),
        }
    }

    /// Atoms with the tight-binding `!` selector: `a!(i,j)`, `a!i`.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let atom = self.atom()?;
        if self.peek() == Some(&Tok::Bang) {
            let array = match atom {
                Expr::Var(name) => name,
                other => {
                    return self.err(format!(
                        "`!` selects from an array variable, found `{other:?}`"
                    ))
                }
            };
            self.bump();
            let subs = if self.eat(&Tok::LParen) {
                let mut subs = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    subs.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                subs
            } else {
                // `a!i`, `a!3` — a single simple subscript.
                vec![self.atom()?]
            };
            Ok(Expr::Index { array, subs })
        } else {
            Ok(atom)
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Some(Tok::Float(v)) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            Some(Tok::Min) | Some(Tok::Max) => {
                let op = if self.bump() == Some(Tok::Min) {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                self.expect(&Tok::LParen)?;
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::bin(op, a, b))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Tok::LParen) && self.peek2() != Some(&Tok::RParen) {
                    // A call `f(x, y)`. Array selection uses `!`, so an
                    // identifier followed by `(` is unambiguous here.
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call { func: name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(other) => self.err(format!("expected expression, found `{other}`")),
            None => self.err("expected expression, found end of input"),
        }
    }
}

/// RAII guard decrementing the parser's recursion depth.
struct DepthGuard<'a> {
    parser: &'a mut Parser,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.parser.depth -= 1;
    }
}

impl std::ops::Deref for DepthGuard<'_> {
    type Target = Parser;
    fn deref(&self) -> &Parser {
        self.parser
    }
}

impl std::ops::DerefMut for DepthGuard<'_> {
    fn deref_mut(&mut self) -> &mut Parser {
        self.parser
    }
}

/// A parsed qualifier, before wrapping into the `Comp` tree.
enum Qual {
    Gen { var: String, range: Range },
    Guard(Expr),
    Let(Vec<(String, Expr)>),
}

/// Wrap `body` in qualifiers: the *first* qualifier becomes the
/// *outermost* loop, per Haskell comprehension semantics.
fn wrap_quals(body: Comp, quals: Vec<Qual>) -> Comp {
    let mut comp = body;
    for q in quals.into_iter().rev() {
        comp = match q {
            Qual::Gen { var, range } => Comp::gen(var, range, comp),
            Qual::Guard(cond) => Comp::Guard {
                cond,
                body: Box::new(comp),
            },
            Qual::Let(binds) => Comp::Let {
                binds,
                body: Box::new(comp),
            },
        };
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Comp;

    #[test]
    fn parse_simple_vector() {
        let p =
            parse_program("param n;\nlet a = array (1,n) [ i := i*i | i <- [1..n] ];\n").unwrap();
        assert_eq!(p.params, vec!["n".to_string()]);
        let def = p.array_def("a").unwrap();
        assert_eq!(def.rank(), 1);
        match &def.comp {
            Comp::Gen {
                var, range, body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(range.step, 1);
                assert!(matches!(**body, Comp::Clause(_)));
            }
            other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn parse_wavefront() {
        // The paper's §3 wavefront example, verbatim modulo whitespace.
        let src = r#"
param n;
letrec* a = array ((1,1),(n,n))
   ([ (1,j) := 1 | j <- [1..n] ] ++
    [ (i,1) := 1 | i <- [2..n] ] ++
    [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
       | i <- [2..n], j <- [2..n] ]);
"#;
        let p = parse_program(src).unwrap();
        let def = p.array_def("a").unwrap();
        assert!(def.is_self_recursive());
        assert_eq!(def.comp.clause_count(), 3);
        match &def.comp {
            Comp::Append(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected append, got {other:?}"),
        }
    }

    #[test]
    fn parse_nested_comprehension() {
        // §5 example 1 shape.
        let src = r#"
[* [3*i := 1] ++
   [ 3*i-1 := a!(3*(i-1)) ] ++
   [ 3*i-2 := a!(3*i) ]
 | i <- [1..100] *]
"#;
        let c = parse_comp(src).unwrap();
        match c {
            Comp::Gen { body, .. } => match *body {
                Comp::Append(cs) => assert_eq!(cs.len(), 3),
                other => panic!("expected append, got {other:?}"),
            },
            other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn parse_where_on_clause() {
        let c = parse_comp("[ i := v + 1 where v = i*i | i <- [1..9] ]").unwrap();
        match c {
            Comp::Gen { body, .. } => assert!(matches!(*body, Comp::Let { .. })),
            other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn parse_where_on_parenthesized_term() {
        let c =
            parse_comp("[* ([ i := v ] where v = 3) ++ [ i+10 := 0 ] | i <- [1..5] *]").unwrap();
        match c {
            Comp::Gen { body, .. } => match *body {
                Comp::Append(ref cs) => {
                    assert_eq!(cs.len(), 2);
                    assert!(matches!(cs[0], Comp::Let { .. }));
                }
                ref other => panic!("expected append, got {other:?}"),
            },
            other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn parse_stepped_generator() {
        let c = parse_comp("[ i := 0 | i <- [10,8..2] ]").unwrap();
        match c {
            Comp::Gen { range, .. } => {
                assert_eq!(range.step, -2);
            }
            other => panic!("expected gen, got {other:?}"),
        }
        assert!(parse_comp("[ i := 0 | i <- [1,1..5] ]").is_err());
    }

    #[test]
    fn parse_guard_qualifier() {
        let c = parse_comp("[ i := 1 | i <- [1..10], i mod 2 == 0 ]").unwrap();
        match c {
            Comp::Gen { body, .. } => assert!(matches!(*body, Comp::Guard { .. })),
            other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn parse_bigupd_binding() {
        let src = r#"
param n;
input a ((1,n),(1,n));
b = bigupd a [ (1,j) := a!(2,j) | j <- [1..n] ];
"#;
        let p = parse_program(src).unwrap();
        match &p.bindings[1] {
            Binding::BigUpd { name, base, comp } => {
                assert_eq!(name, "b");
                assert_eq!(base, "a");
                assert_eq!(comp.clause_count(), 1);
            }
            other => panic!("expected bigupd, got {other:?}"),
        }
    }

    #[test]
    fn parse_accum_array() {
        let src =
            "param n;\nlet h = accumArray (+) 0 (1,10) [ i mod 10 + 1 := 1.0 | i <- [1..n] ];\n";
        let p = parse_program(src).unwrap();
        let def = p.array_def("h").unwrap();
        match &def.kind {
            ArrayKind::Accumulated {
                combine,
                commutative,
                ..
            } => {
                assert_eq!(*combine, BinOp::Add);
                assert!(commutative);
            }
            other => panic!("expected accumulated, got {other:?}"),
        }
    }

    #[test]
    fn parse_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::add(Expr::int(1), Expr::mul(Expr::int(2), Expr::int(3)))
        );
        let e2 = parse_expr("a!(i-1) + 1").unwrap();
        assert_eq!(
            e2,
            Expr::add(
                Expr::index1("a", Expr::sub(Expr::var("i"), Expr::int(1))),
                Expr::int(1)
            )
        );
    }

    #[test]
    fn parse_bang_binds_tighter_than_mul() {
        let e = parse_expr("a!k * b!k").unwrap();
        assert_eq!(
            e,
            Expr::mul(
                Expr::index1("a", Expr::var("k")),
                Expr::index1("b", Expr::var("k"))
            )
        );
    }

    #[test]
    fn parse_if_and_let_exprs() {
        let e = parse_expr("if i == 1 then 1 else let v = i - 1 in v * 2").unwrap();
        assert!(matches!(e, Expr::If { .. }));
    }

    #[test]
    fn parse_2d_index_and_bounds() {
        let p = parse_program(
            "param n;\nlet a = array ((1,1),(n,n)) [ (i,j) := 0 | i <- [1..n], j <- [1..n] ];\n",
        )
        .unwrap();
        let def = p.array_def("a").unwrap();
        assert_eq!(def.rank(), 2);
    }

    #[test]
    fn parse_mutually_recursive_letrec() {
        let src = r#"
param n;
letrec* a = array (1,n) [ i := if i == 1 then 1 else b!(i-1) | i <- [1..n] ]
      and b = array (1,n) [ i := a!i + 1 | i <- [1..n] ];
"#;
        let p = parse_program(src).unwrap();
        match &p.bindings[0] {
            Binding::LetrecStar(defs) => assert_eq!(defs.len(), 2),
            other => panic!("expected letrec*, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err =
            parse_program("param n;\nlet a = array (1,n) [ i := | i <- [1..n] ];\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn call_expression() {
        let e = parse_expr("omega(i, j) * 2").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }
}
