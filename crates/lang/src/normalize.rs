//! Loop normalization (§6: "the loops have been normalized: the low
//! value of the index is 1, and the index increment is 1").
//!
//! Every generator `i <- [lo, lo+step .. hi]` is rewritten to a
//! normalized index `x ∈ [1..M]` with `i = lo + (x-1)·step`. When the
//! subscript expressions are linear in the original indices they remain
//! linear after substitution, and the dependence tests operate on the
//! normalized coefficients. Normalized loop variables are keyed by
//! [`LoopId`] (rendered `L<k>`) so that same-named indices of different
//! generators can never be confused.

use std::fmt;

use crate::affine::Affine;
use crate::ast::{Expr, LoopId};
use crate::env::ConstEnv;
use crate::number::{ClauseContext, LoopFrame, PathStep};

/// A normalization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum NormalizeError {
    /// A loop bound is not an affine constant under the parameter
    /// environment (e.g. depends on an unbound parameter or an array).
    NonConstantBound { var: String, bound: String },
    /// A triangular loop — the bound depends on an outer loop index.
    /// Supported by neither the paper's §6 formulation nor this
    /// implementation.
    TriangularBound { var: String, bound: String },
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::NonConstantBound { var, bound } => write!(
                f,
                "loop `{var}` has non-constant bound `{bound}` (bind all parameters)"
            ),
            NormalizeError::TriangularBound { var, bound } => write!(
                f,
                "loop `{var}` has triangular bound `{bound}` depending on an outer index"
            ),
        }
    }
}

impl std::error::Error for NormalizeError {}

/// A generator rewritten to run over `x ∈ [1..size]` with
/// `original = lo + (x-1)·step`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NormalizedLoop {
    pub id: LoopId,
    /// The original index variable name (for diagnostics/codegen).
    pub var: String,
    /// Iteration count `M_k` (zero for an empty loop).
    pub size: i64,
    /// Original low value.
    pub lo: i64,
    /// Original (nonzero) step.
    pub step: i64,
}

impl NormalizedLoop {
    /// The canonical name of the normalized index variable.
    pub fn norm_var(&self) -> String {
        format!("L{}", self.id.0)
    }

    /// The original index as an affine form of the normalized index:
    /// `lo + (x-1)·step = (lo - step) + step·x`.
    pub fn original_as_affine(&self) -> Affine {
        Affine::term(self.norm_var(), self.step).add(&Affine::constant(self.lo - self.step))
    }

    /// Original index value at normalized position `x` (1-based).
    pub fn original_at(&self, x: i64) -> i64 {
        self.lo + (x - 1) * self.step
    }
}

/// Normalize a single generator under a parameter environment.
///
/// # Errors
/// Fails when a bound does not fold to a constant ([`NormalizeError`]).
pub fn normalize_loop(frame: &LoopFrame, env: &ConstEnv) -> Result<NormalizedLoop, NormalizeError> {
    let fold = |e: &Expr| -> Result<i64, NormalizeError> {
        match Affine::from_expr(e, env) {
            Some(a) if a.is_constant() => Ok(a.constant_part()),
            Some(a) => Err(NormalizeError::TriangularBound {
                var: frame.var.clone(),
                bound: a.to_string(),
            }),
            None => Err(NormalizeError::NonConstantBound {
                var: frame.var.clone(),
                bound: crate::pretty::expr_str(e),
            }),
        }
    };
    let lo = fold(&frame.range.lo)?;
    let hi = fold(&frame.range.hi)?;
    let step = frame.range.step;
    debug_assert!(step != 0, "parser guarantees nonzero step");
    let size = if step > 0 {
        if hi >= lo {
            (hi - lo) / step + 1
        } else {
            0
        }
    } else if hi <= lo {
        (lo - hi) / (-step) + 1
    } else {
        0
    };
    Ok(NormalizedLoop {
        id: frame.id,
        var: frame.var.clone(),
        size,
        lo,
        step,
    })
}

/// Normalize every loop on a clause's path, outermost first.
///
/// # Errors
/// Propagates the first [`NormalizeError`].
pub fn normalize_nest(
    ctx: &ClauseContext,
    env: &ConstEnv,
) -> Result<Vec<NormalizedLoop>, NormalizeError> {
    ctx.loops()
        .into_iter()
        .map(|f| normalize_loop(f, env))
        .collect()
}

/// Inline `let` bindings from a clause's path (and inside the
/// expression itself) into an expression, innermost binding last, so
/// that subscript extraction sees through common-subexpression naming.
pub fn inline_path_lets(ctx: &ClauseContext, expr: &Expr) -> Expr {
    // First inline lets *inside* the expression.
    let mut e = inline_expr_lets(expr);
    // Then substitute path bindings, innermost (rightmost) first so
    // shadowing resolves to the nearest binder. A path binding's RHS may
    // itself use outer bindings, so each substituted RHS is processed
    // against the remaining outer path.
    let lets: Vec<&Vec<(String, Expr)>> = ctx
        .path
        .iter()
        .filter_map(|s| match s {
            PathStep::Let(b) => Some(b),
            _ => None,
        })
        .collect();
    for binds in lets.iter().rev() {
        for (name, rhs) in binds.iter().rev() {
            let rhs = inline_expr_lets(rhs);
            e = e.subst(name, &rhs);
        }
    }
    e
}

/// Inline all `let` expressions within `e` (non-recursive bindings,
/// left-to-right).
pub fn inline_expr_lets(e: &Expr) -> Expr {
    match e {
        Expr::Let { binds, body } => {
            let mut out = inline_expr_lets(body);
            for (name, rhs) in binds.iter().rev() {
                let rhs = inline_expr_lets(rhs);
                out = out.subst(name, &rhs);
            }
            out
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => e.clone(),
        Expr::Index { array, subs } => Expr::Index {
            array: array.clone(),
            subs: subs.iter().map(inline_expr_lets).collect(),
        },
        Expr::Binary { op, lhs, rhs } => {
            Expr::bin(*op, inline_expr_lets(lhs), inline_expr_lets(rhs))
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(inline_expr_lets(expr)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(inline_expr_lets(cond)),
            then: Box::new(inline_expr_lets(then)),
            els: Box::new(inline_expr_lets(els)),
        },
        Expr::Call { func, args } => Expr::Call {
            func: func.clone(),
            args: args.iter().map(inline_expr_lets).collect(),
        },
    }
}

/// Extract a subscript expression as an affine form over *normalized*
/// loop variables (`L<k>`), folding parameters. Returns `None` when the
/// subscript is not linear in the loop indices.
pub fn normalized_subscript(
    expr: &Expr,
    nest: &[NormalizedLoop],
    ctx: &ClauseContext,
    env: &ConstEnv,
) -> Option<Affine> {
    let inlined = inline_path_lets(ctx, expr);
    let raw = Affine::from_expr(&inlined, env)?;
    // Substitute innermost loops first so inner shadowing of a reused
    // index name resolves correctly.
    let mut a = raw;
    for nl in nest.iter().rev() {
        a = a.subst(&nl.var, &nl.original_as_affine());
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Range;
    use crate::number::{clause_contexts, number_clauses};
    use crate::parser::parse_comp;

    fn ctx_of(src: &str, env: &ConstEnv) -> (ClauseContext, Vec<NormalizedLoop>) {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let ctxs = clause_contexts(&c);
        let ctx = ctxs.into_iter().next().unwrap();
        let nest = normalize_nest(&ctx, env).unwrap();
        (ctx, nest)
    }

    #[test]
    fn unit_range_is_identity() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let (_, nest) = ctx_of("[ i := 0 | i <- [1..n] ]", &env);
        assert_eq!(nest[0].size, 10);
        assert_eq!(nest[0].lo, 1);
        assert_eq!(nest[0].step, 1);
        // i = 0 + 1*x
        let a = nest[0].original_as_affine();
        assert_eq!(a.coeff(&nest[0].norm_var()), 1);
        assert_eq!(a.constant_part(), 0);
    }

    #[test]
    fn offset_range_shifts() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let (_, nest) = ctx_of("[ i := 0 | i <- [2..n] ]", &env);
        assert_eq!(nest[0].size, 9);
        assert_eq!(nest[0].original_at(1), 2);
        assert_eq!(nest[0].original_at(9), 10);
    }

    #[test]
    fn backward_range_normalizes() {
        let env = ConstEnv::new();
        let (_, nest) = ctx_of("[ i := 0 | i <- [9,7..1] ]", &env);
        assert_eq!(nest[0].size, 5);
        assert_eq!(nest[0].original_at(1), 9);
        assert_eq!(nest[0].original_at(5), 1);
    }

    #[test]
    fn empty_range_size_zero() {
        let env = ConstEnv::new();
        let (_, nest) = ctx_of("[ i := 0 | i <- [5..4] ]", &env);
        assert_eq!(nest[0].size, 0);
    }

    #[test]
    fn subscript_normalizes_through_stride() {
        // i <- [2..10] step 2 → i = 2x, so subscript 3*i - 1 = 6x - 1... :
        // lo=2, step=2: i = 2 + (x-1)*2 = 2x. 3i - 1 = 6x - 1.
        let env = ConstEnv::new();
        let (ctx, nest) = ctx_of("[ 3*i - 1 := 0 | i <- [2,4..10] ]", &env);
        let a = normalized_subscript(&ctx.clause.subs[0], &nest, &ctx, &env).unwrap();
        assert_eq!(a.coeff(&nest[0].norm_var()), 6);
        assert_eq!(a.constant_part(), -1);
    }

    #[test]
    fn unbound_parameter_is_error() {
        let mut c = parse_comp("[ i := 0 | i <- [1..n] ]").unwrap();
        number_clauses(&mut c);
        let ctx = clause_contexts(&c).into_iter().next().unwrap();
        let err = normalize_nest(&ctx, &ConstEnv::new()).unwrap_err();
        assert!(matches!(err, NormalizeError::TriangularBound { .. }));
    }

    #[test]
    fn triangular_bound_rejected() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let mut c = parse_comp("[ (i,j) := 0 | i <- [1..n], j <- [1..i] ]").unwrap();
        number_clauses(&mut c);
        let ctx = clause_contexts(&c).into_iter().next().unwrap();
        let err = normalize_nest(&ctx, &env).unwrap_err();
        assert!(matches!(err, NormalizeError::TriangularBound { .. }));
    }

    #[test]
    fn path_lets_inline_into_subscripts() {
        let env = ConstEnv::new();
        let (ctx, nest) = ctx_of("[* ([ v := 0 ] where v = i + 1) | i <- [1..5] *]", &env);
        let a = normalized_subscript(&ctx.clause.subs[0], &nest, &ctx, &env).unwrap();
        // v = i + 1, i = x  →  x + 1
        assert_eq!(a.coeff(&nest[0].norm_var()), 1);
        assert_eq!(a.constant_part(), 1);
    }

    #[test]
    fn expr_lets_inline() {
        let e = crate::parser::parse_expr("let v = i - 1 in v * 2").unwrap();
        let out = inline_expr_lets(&e);
        let expected = crate::parser::parse_expr("(i - 1) * 2").unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn shadowed_loop_vars_resolve_innermost() {
        // Outer i and inner i: subscript `i` inside inner loop refers to
        // the inner generator.
        let env = ConstEnv::new();
        let mut c = parse_comp("[* [* [ i := 0 ] | i <- [5..8] *] | i <- [1..3] *]").unwrap();
        number_clauses(&mut c);
        let ctx = clause_contexts(&c).into_iter().next().unwrap();
        let nest = normalize_nest(&ctx, &env).unwrap();
        assert_eq!(nest.len(), 2);
        let a = normalized_subscript(&ctx.clause.subs[0], &nest, &ctx, &env).unwrap();
        // Inner loop is nest[1]: i = 4 + x  (lo=5, step=1).
        assert_eq!(a.coeff(&nest[1].norm_var()), 1);
        assert_eq!(a.coeff(&nest[0].norm_var()), 0);
        assert_eq!(a.constant_part(), 4);
    }

    #[test]
    fn frame_for_direct_use() {
        let env = ConstEnv::from_pairs([("n", 7)]);
        let frame = LoopFrame {
            id: LoopId(3),
            var: "k".into(),
            range: Range::new(Expr::int(1), Expr::var("n")),
        };
        let nl = normalize_loop(&frame, &env).unwrap();
        assert_eq!(nl.norm_var(), "L3");
        assert_eq!(nl.size, 7);
    }
}
