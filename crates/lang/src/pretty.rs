//! Pretty-printing of programs back into surface syntax.
//!
//! The printer emits text that [`crate::parser::parse_program`] accepts,
//! which the test suite uses for parse/print round-trips.

use std::fmt::Write as _;

use crate::ast::{ArrayDef, ArrayKind, BinOp, Binding, Comp, Expr, Program, Range, UnOp};

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    if !p.params.is_empty() {
        let _ = writeln!(out, "param {};", p.params.join(", "));
    }
    for b in &p.bindings {
        match b {
            Binding::Input { name, bounds } => {
                let _ = writeln!(out, "input {} {};", name, bounds_str(bounds));
            }
            Binding::Let(def) => {
                let _ = writeln!(out, "let {};", def_str(def));
            }
            Binding::LetrecStar(defs) => {
                let body = defs
                    .iter()
                    .map(def_str)
                    .collect::<Vec<_>>()
                    .join("\n  and ");
                let _ = writeln!(out, "letrec* {body};");
            }
            Binding::BigUpd { name, base, comp } => {
                let _ = writeln!(out, "{} = bigupd {} {};", name, base, comp_str(comp));
            }
            Binding::Reduce {
                name,
                op,
                init,
                comp,
            } => {
                let _ = writeln!(
                    out,
                    "let {} = reduce ({}) {} {};",
                    name,
                    op.symbol(),
                    expr_str(init),
                    scalar_comp_str(comp)
                );
            }
        }
    }
    if !p.results.is_empty() {
        let _ = writeln!(out, "result {};", p.results.join(", "));
    }
    out
}

fn def_str(d: &ArrayDef) -> String {
    match &d.kind {
        ArrayKind::Monolithic => format!(
            "{} = array {} {}",
            d.name,
            bounds_str(&d.bounds),
            comp_str(&d.comp)
        ),
        ArrayKind::Accumulated {
            combine, default, ..
        } => format!(
            "{} = accumArray ({}) {} {} {}",
            d.name,
            combine.symbol(),
            expr_str(default),
            bounds_str(&d.bounds),
            comp_str(&d.comp)
        ),
    }
}

fn bounds_str(bounds: &[(Expr, Expr)]) -> String {
    if bounds.len() == 1 {
        format!("({},{})", expr_str(&bounds[0].0), expr_str(&bounds[0].1))
    } else {
        // Haskell corner-tuple form: ((lo₁,lo₂,...),(hi₁,hi₂,...)).
        let lows = bounds
            .iter()
            .map(|(l, _)| expr_str(l))
            .collect::<Vec<_>>()
            .join(",");
        let highs = bounds
            .iter()
            .map(|(_, h)| expr_str(h))
            .collect::<Vec<_>>()
            .join(",");
        format!("(({lows}),({highs}))")
    }
}

/// Render a scalar comprehension (subscript-less clauses) in ordinary
/// bracket form.
pub fn scalar_comp_str(c: &Comp) -> String {
    fn go(c: &Comp, quals: &mut Vec<String>) -> String {
        match c {
            Comp::Gen {
                var, range, body, ..
            } => {
                quals.push(format!("{} <- {}", var, range_str(range)));
                go(body, quals)
            }
            Comp::Guard { cond, body } => {
                quals.push(expr_str(cond));
                go(body, quals)
            }
            Comp::Let { binds, body } => {
                let bs = binds
                    .iter()
                    .map(|(n, e)| format!("{} = {}", n, expr_str(e)))
                    .collect::<Vec<_>>()
                    .join("; ");
                quals.push(format!("let {bs}"));
                go(body, quals)
            }
            Comp::Clause(sv) => expr_str(&sv.value),
            Comp::Append(_) => unreachable!("handled by caller"),
        }
    }
    match c {
        Comp::Append(parts) => parts
            .iter()
            .map(scalar_comp_str)
            .collect::<Vec<_>>()
            .join(" ++ "),
        other => {
            let mut quals = Vec::new();
            let elem = go(other, &mut quals);
            if quals.is_empty() {
                format!("[ {elem} ]")
            } else {
                format!("[ {elem} | {} ]", quals.join(", "))
            }
        }
    }
}

/// Render a comprehension tree. Generators/guards/lets print in the
/// nested `[* ... *]` form, which subsumes ordinary comprehensions.
pub fn comp_str(c: &Comp) -> String {
    match c {
        Comp::Append(cs) => {
            let parts = cs.iter().map(comp_str).collect::<Vec<_>>().join(" ++ ");
            format!("({parts})")
        }
        Comp::Gen {
            var, range, body, ..
        } => format!("[* {} | {} <- {} *]", comp_str(body), var, range_str(range)),
        Comp::Guard { cond, body } => {
            format!("[* {} | {} *]", comp_str(body), expr_str(cond))
        }
        Comp::Let { binds, body } => {
            let bs = binds
                .iter()
                .map(|(n, e)| format!("{} = {}", n, expr_str(e)))
                .collect::<Vec<_>>()
                .join("; ");
            format!("({} where {})", comp_str(body), bs)
        }
        Comp::Clause(sv) => {
            let subs = if sv.subs.len() == 1 {
                expr_str(&sv.subs[0])
            } else {
                format!(
                    "({})",
                    sv.subs.iter().map(expr_str).collect::<Vec<_>>().join(",")
                )
            };
            format!("[ {} := {} ]", subs, expr_str(&sv.value))
        }
    }
}

fn range_str(r: &Range) -> String {
    if r.step == 1 {
        format!("[{}..{}]", expr_str(&r.lo), expr_str(&r.hi))
    } else {
        // Reconstruct `[lo, lo+step .. hi]`.
        let second = Expr::add(r.lo.clone(), Expr::int(r.step));
        format!(
            "[{},{}..{}]",
            expr_str(&r.lo),
            expr_str(&second),
            expr_str(&r.hi)
        )
    }
}

/// Render a scalar expression with minimal but safe parenthesization.
pub fn expr_str(e: &Expr) -> String {
    prec_str(e, 0)
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        BinOp::Min | BinOp::Max => 6,
    }
}

fn prec_str(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Num(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Int(v) => format!("{v}"),
        Expr::Var(v) => v.clone(),
        Expr::Index { array, subs } => {
            if subs.len() == 1 && matches!(subs[0], Expr::Var(_) | Expr::Int(_)) {
                format!("{}!{}", array, prec_str(&subs[0], 9))
            } else {
                format!(
                    "{}!({})",
                    array,
                    subs.iter().map(expr_str).collect::<Vec<_>>().join(",")
                )
            }
        }
        Expr::Binary { op, lhs, rhs } if matches!(op, BinOp::Min | BinOp::Max) => {
            format!("{}({}, {})", op.symbol(), expr_str(lhs), expr_str(rhs))
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = prec(*op);
            // Left-associative: the right child needs one more level.
            let s = format!(
                "{} {} {}",
                prec_str(lhs, p),
                op.symbol(),
                prec_str(rhs, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("-{}", prec_str(expr, 8)),
            UnOp::Not => format!("not {}", prec_str(expr, 8)),
            other => format!("{}({})", other.symbol(), expr_str(expr)),
        },
        Expr::If { cond, then, els } => {
            let s = format!(
                "if {} then {} else {}",
                expr_str(cond),
                expr_str(then),
                expr_str(els)
            );
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Let { binds, body } => {
            let bs = binds
                .iter()
                .map(|(n, e)| format!("{} = {}", n, expr_str(e)))
                .collect::<Vec<_>>()
                .join("; ");
            let s = format!("let {} in {}", bs, expr_str(body));
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call { func, args } => format!(
            "{}({})",
            func,
            args.iter().map(expr_str).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn expr_roundtrip() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a!(i - 1,j) + a!(i,j - 1)",
            "if i == 1 then 1 else a!(i - 1)",
            "-i + 3",
            "i mod 3 + 1",
            "min(i, j) * 2",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = expr_str(&e);
            let back = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
            assert_eq!(e, back, "roundtrip changed `{src}` → `{printed}`");
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = r#"
param n;
input u (1,n);
letrec* a = array ((1,1),(n,n))
   ([ (1,j) := 1 | j <- [1..n] ] ++
    [ (i,j) := a!(i-1,j) + u!j | i <- [2..n], j <- [1..n] ]);
result a;
"#;
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        let back = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(p, back);
    }

    #[test]
    fn stepped_range_roundtrip() {
        let src = "param n;\nlet a = array (1,n) [ i := 0 | i <- [9,7..1] ];\n";
        let p = parse_program(src).unwrap();
        let back = parse_program(&program_to_string(&p)).unwrap();
        assert_eq!(p, back);
    }
}
