//! Affine (linear) integer forms over named variables.
//!
//! Subscript analysis (§6 of the paper) applies when subscript
//! expressions are *linear in the loop indices*:
//! `f x1 ... xd = a0 + Σ ak·xk`. [`Affine`] is that normal form, and
//! [`Affine::from_expr`] is the extraction that decides whether an
//! expression is linear (folding compile-time constants on the way).

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, Expr, UnOp};
use crate::env::ConstEnv;

/// An affine integer form `c + Σ coeff(v) · v` over named variables.
///
/// Variables with a zero coefficient are never stored, so structural
/// equality coincides with mathematical equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    constant: i64,
    /// Sorted by variable name; never contains zero coefficients.
    coeffs: BTreeMap<String, i64>,
}

impl Affine {
    /// The constant form `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// The single-variable form `1·v`.
    pub fn var(v: impl Into<String>) -> Affine {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v.into(), 1);
        Affine {
            constant: 0,
            coeffs,
        }
    }

    /// The form `k·v`.
    pub fn term(v: impl Into<String>, k: i64) -> Affine {
        let mut a = Affine::constant(0);
        a.add_term(&v.into(), k);
        a
    }

    /// The constant part `a0`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// Iterate over `(variable, coefficient)` pairs with nonzero
    /// coefficients, in variable-name order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.coeffs.iter().map(|(v, &k)| (v.as_str(), k))
    }

    /// The set of variables with nonzero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs.keys().map(|s| s.as_str())
    }

    /// `true` if the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    fn add_term(&mut self, v: &str, k: i64) {
        if k == 0 {
            return;
        }
        let entry = self.coeffs.entry(v.to_string()).or_insert(0);
        *entry += k;
        if *entry == 0 {
            self.coeffs.remove(v);
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, k) in other.terms() {
            out.add_term(v, k);
        }
        out
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Scalar multiple.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            constant: self.constant * k,
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, &c)| (v.clone(), c * k))
                .collect(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Affine {
        self.scale(-1)
    }

    /// Product, defined only when at least one side is constant
    /// (otherwise the result is not affine).
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        if self.is_constant() {
            Some(other.scale(self.constant))
        } else if other.is_constant() {
            Some(self.scale(other.constant))
        } else {
            None
        }
    }

    /// Substitute an affine form for a variable: `self[v := repl]`.
    pub fn subst(&self, v: &str, repl: &Affine) -> Affine {
        let k = self.coeff(v);
        if k == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(v);
        out.add(&repl.scale(k))
    }

    /// Evaluate under a total assignment of the form's variables.
    ///
    /// # Panics
    /// Panics if a variable is missing from `assignment`.
    pub fn eval(&self, assignment: &BTreeMap<String, i64>) -> i64 {
        let mut acc = self.constant;
        for (v, k) in self.terms() {
            let val = assignment
                .get(v)
                .unwrap_or_else(|| panic!("affine eval: unbound variable `{v}`"));
            acc += k * val;
        }
        acc
    }

    /// Extract an affine form from an expression. Returns `None` when
    /// the expression is not linear (e.g. `i*j`, `a!k` as a subscript,
    /// division with a remainder, or a non-constant `mod`).
    ///
    /// Variables bound in `env` (program parameters with known values)
    /// fold to constants; all other variables stay symbolic — those are
    /// the loop indices as far as the analysis is concerned.
    pub fn from_expr(e: &Expr, env: &ConstEnv) -> Option<Affine> {
        match e {
            Expr::Int(v) => Some(Affine::constant(*v)),
            Expr::Num(v) => {
                // Accept integral float literals used in subscripts.
                if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
                    Some(Affine::constant(*v as i64))
                } else {
                    None
                }
            }
            Expr::Var(v) => match env.lookup(v) {
                Some(c) => Some(Affine::constant(c)),
                None => Some(Affine::var(v.clone())),
            },
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => Some(Affine::from_expr(expr, env)?.neg()),
            Expr::Binary { op, lhs, rhs } => {
                let l = Affine::from_expr(lhs, env)?;
                let r = Affine::from_expr(rhs, env)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => {
                        // Linear only for exact constant division.
                        if r.is_constant() && r.constant != 0 && l.is_constant() {
                            let (a, b) = (l.constant, r.constant);
                            if a % b == 0 {
                                return Some(Affine::constant(a / b));
                            }
                        }
                        None
                    }
                    BinOp::Mod => {
                        if l.is_constant() && r.is_constant() && r.constant != 0 {
                            Some(Affine::constant(l.constant.rem_euclid(r.constant)))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Render the form back into an [`Expr`].
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        for (v, k) in self.terms() {
            let term = if k == 1 {
                Expr::var(v)
            } else {
                Expr::mul(Expr::int(k), Expr::var(v))
            };
            acc = Some(match acc {
                None => term,
                Some(prev) => Expr::add(prev, term),
            });
        }
        match acc {
            None => Expr::int(self.constant),
            Some(e) if self.constant == 0 => e,
            Some(e) if self.constant > 0 => Expr::add(e, Expr::int(self.constant)),
            Some(e) => Expr::sub(e, Expr::int(-self.constant)),
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, k) in self.terms() {
            if first {
                match k {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{k}{v}")?,
                }
                first = false;
            } else if k >= 0 {
                if k == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {k}{v}")?;
                }
            } else if k == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -k)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_n(n: i64) -> ConstEnv {
        let mut e = ConstEnv::new();
        e.bind("n", n);
        e
    }

    #[test]
    fn extract_linear_subscript() {
        // 3*i - 1 with n bound
        let e = Expr::sub(Expr::mul(Expr::int(3), Expr::var("i")), Expr::int(1));
        let a = Affine::from_expr(&e, &ConstEnv::new()).unwrap();
        assert_eq!(a.coeff("i"), 3);
        assert_eq!(a.constant_part(), -1);
    }

    #[test]
    fn params_fold_to_constants() {
        // n - i  with n = 10
        let e = Expr::sub(Expr::var("n"), Expr::var("i"));
        let a = Affine::from_expr(&e, &env_n(10)).unwrap();
        assert_eq!(a.constant_part(), 10);
        assert_eq!(a.coeff("i"), -1);
    }

    #[test]
    fn nonlinear_rejected() {
        let e = Expr::mul(Expr::var("i"), Expr::var("j"));
        assert!(Affine::from_expr(&e, &ConstEnv::new()).is_none());
        let idx = Expr::index1("k", Expr::var("i"));
        assert!(Affine::from_expr(&idx, &ConstEnv::new()).is_none());
    }

    #[test]
    fn constant_mul_is_linear() {
        // (n-1) * i  with n = 5  →  4i
        let e = Expr::mul(Expr::sub(Expr::var("n"), Expr::int(1)), Expr::var("i"));
        let a = Affine::from_expr(&e, &env_n(5)).unwrap();
        assert_eq!(a.coeff("i"), 4);
    }

    #[test]
    fn add_cancels_to_zero_coeff() {
        let a = Affine::term("i", 2).add(&Affine::term("i", -2));
        assert!(a.is_constant());
        assert_eq!(a, Affine::constant(0));
    }

    #[test]
    fn subst_inlines_normalization() {
        // i ↦ 2*i' - 1 inside 3i + 4:  3(2i'-1)+4 = 6i' + 1
        let a = Affine::term("i", 3).add(&Affine::constant(4));
        let repl = Affine::term("ip", 2).add(&Affine::constant(-1));
        let s = a.subst("i", &repl);
        assert_eq!(s.coeff("ip"), 6);
        assert_eq!(s.constant_part(), 1);
    }

    #[test]
    fn eval_matches_terms() {
        let a = Affine::term("i", 3)
            .add(&Affine::term("j", -2))
            .add(&Affine::constant(7));
        let mut asg = BTreeMap::new();
        asg.insert("i".to_string(), 4);
        asg.insert("j".to_string(), 5);
        assert_eq!(a.eval(&asg), 3 * 4 - 2 * 5 + 7);
    }

    #[test]
    fn display_readable() {
        let a = Affine::term("i", 3)
            .add(&Affine::term("j", -1))
            .add(&Affine::constant(-2));
        assert_eq!(a.to_string(), "3i - j - 2");
        assert_eq!(Affine::constant(0).to_string(), "0");
    }

    #[test]
    fn roundtrip_to_expr() {
        let a = Affine::term("i", 2).add(&Affine::constant(-3));
        let e = a.to_expr();
        let back = Affine::from_expr(&e, &ConstEnv::new()).unwrap();
        assert_eq!(a, back);
    }
}
