//! Abstract syntax for the paper's generalized-Haskell array language.
//!
//! The surface language is the one used throughout Anderson & Hudak
//! (PLDI '90): array comprehensions built from *nested list
//! comprehensions* (`[* ... *]` brackets), the `:=` subscript/value pair
//! operator, `++` appends, generators over arithmetic sequences, guards,
//! `let`/`where` bindings, `letrec*` strict-context recursive bindings,
//! and the semi-monolithic update construct `bigupd`.

use std::fmt;

/// A scalar binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Euclidean-style remainder (`mod`).
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Min,
    Max,
}

impl BinOp {
    /// `true` for operators whose result is a boolean (comparisons and
    /// logical connectives).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// The operator's conventional surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A scalar unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
}

impl UnOp {
    /// The operator's conventional surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
        }
    }
}

/// A scalar expression.
///
/// Expressions appear as subscripts, element values, loop bounds and
/// guard conditions. Arrays are referenced with the paper's `a!(i,j)`
/// selector syntax, represented by [`Expr::Index`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating-point literal.
    Num(f64),
    /// Integer literal.
    Int(i64),
    /// Variable reference (loop index, `let` binding, or free parameter).
    Var(String),
    /// Array element selection `a!(s1,...,sk)`.
    Index { array: String, subs: Vec<Expr> },
    /// Binary application.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary application.
    Unary { op: UnOp, expr: Box<Expr> },
    /// `if c then t else e`.
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `let x = e1; y = e2 in body` (also produced by `where`).
    Let {
        binds: Vec<(String, Expr)>,
        body: Box<Expr>,
    },
    /// Call to a named scalar function (workload hooks, e.g. `omega(x)`).
    Call { func: String, args: Vec<Expr> },
}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/`mul` are static constructors, not operators
impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Convenience constructor for a float literal.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Convenience constructor for a binary application.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// A 1-D array selection `a!(sub)`.
    pub fn index1(array: impl Into<String>, sub: Expr) -> Expr {
        Expr::Index {
            array: array.into(),
            subs: vec![sub],
        }
    }

    /// A 2-D array selection `a!(s1,s2)`.
    pub fn index2(array: impl Into<String>, s1: Expr, s2: Expr) -> Expr {
        Expr::Index {
            array: array.into(),
            subs: vec![s1, s2],
        }
    }

    /// Visit every subexpression (including `self`), pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => {}
            Expr::Index { subs, .. } => {
                for s in subs {
                    s.walk(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::If { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            Expr::Let { binds, body } => {
                for (_, e) in binds {
                    e.walk(f);
                }
                body.walk(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Collect the names of all arrays selected from within this
    /// expression, in first-occurrence order without duplicates.
    pub fn referenced_arrays(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Index { array, .. } = e {
                if !out.iter().any(|a| a == array) {
                    out.push(array.clone());
                }
            }
        });
        out
    }

    /// Substitute `replacement` for every free occurrence of variable
    /// `name`. Bindings introduced by inner `let`s shadow `name`.
    pub fn subst(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => replacement.clone(),
            Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => self.clone(),
            Expr::Index { array, subs } => Expr::Index {
                array: array.clone(),
                subs: subs.iter().map(|s| s.subst(name, replacement)).collect(),
            },
            Expr::Binary { op, lhs, rhs } => Expr::bin(
                *op,
                lhs.subst(name, replacement),
                rhs.subst(name, replacement),
            ),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.subst(name, replacement)),
            },
            Expr::If { cond, then, els } => Expr::If {
                cond: Box::new(cond.subst(name, replacement)),
                then: Box::new(then.subst(name, replacement)),
                els: Box::new(els.subst(name, replacement)),
            },
            Expr::Let { binds, body } => {
                let mut shadowed = false;
                let mut new_binds = Vec::with_capacity(binds.len());
                for (n, e) in binds {
                    // Bindings are evaluated left-to-right; once the name
                    // is rebound, later RHSes and the body see the new one.
                    let rhs = if shadowed {
                        e.clone()
                    } else {
                        e.subst(name, replacement)
                    };
                    if n == name {
                        shadowed = true;
                    }
                    new_binds.push((n.clone(), rhs));
                }
                let body = if shadowed {
                    (**body).clone()
                } else {
                    body.subst(name, replacement)
                };
                Expr::Let {
                    binds: new_binds,
                    body: Box::new(body),
                }
            }
            Expr::Call { func, args } => Expr::Call {
                func: func.clone(),
                args: args.iter().map(|a| a.subst(name, replacement)).collect(),
            },
        }
    }
}

/// An arithmetic-sequence generator range.
///
/// Surface syntax `[lo..hi]` has `step = 1`; `[a,b..hi]` has
/// `step = b - a` (the paper's `[low,inc..high]` / `[high,dec..low]`).
/// The step must be a compile-time constant, as required for loop
/// normalization (Banerjee).
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    pub lo: Expr,
    pub hi: Expr,
    pub step: i64,
}

impl Range {
    /// A unit-step range `[lo..hi]`.
    pub fn new(lo: Expr, hi: Expr) -> Range {
        Range { lo, hi, step: 1 }
    }

    /// A strided range `[lo, lo+step .. hi]`.
    pub fn stepped(lo: Expr, hi: Expr, step: i64) -> Range {
        Range { lo, hi, step }
    }
}

/// Identifies one s/v clause within an array definition's comprehension.
///
/// Clause ids are assigned in left-to-right source order by
/// [`crate::number::number_clauses`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseId(pub u32);

impl fmt::Display for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies one generator (loop) within an array definition.
///
/// Two clauses "share" a loop when they are nested inside the *same*
/// generator node, not merely generators with the same index name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A subscript/value clause `[ s := v ]` — the innermost singleton list
/// of a nested comprehension, playing the role the paper assigns to an
/// assignment statement in an imperative DO loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SvClause {
    /// Assigned by the numbering pass; `ClauseId(u32::MAX)` before it.
    pub id: ClauseId,
    /// One subscript expression per array dimension.
    pub subs: Vec<Expr>,
    /// The element value expression.
    pub value: Expr,
}

impl SvClause {
    /// A clause with an unassigned id.
    pub fn new(subs: Vec<Expr>, value: Expr) -> SvClause {
        SvClause {
            id: ClauseId(u32::MAX),
            subs,
            value,
        }
    }
}

/// A nested list comprehension (`[* ... *]`) expression tree.
///
/// Each node returns a list of subscript/value pairs. `Append` nodes
/// branch into different list expressions; `Gen` nodes instantiate their
/// body once per index value and append the instances; `Guard` nodes
/// yield their body's list or `[]`; `Let` nodes scope common
/// subexpressions over their body.
#[derive(Debug, Clone, PartialEq)]
pub enum Comp {
    /// `e1 ++ e2 ++ ...` — at least one child.
    Append(Vec<Comp>),
    /// `[* body | var <- range *]`.
    Gen {
        /// Assigned by the numbering pass; `LoopId(u32::MAX)` before it.
        id: LoopId,
        var: String,
        range: Range,
        body: Box<Comp>,
    },
    /// `[* body | cond *]`.
    Guard { cond: Expr, body: Box<Comp> },
    /// `let x = e in body` / `body where x = e`.
    Let {
        binds: Vec<(String, Expr)>,
        body: Box<Comp>,
    },
    /// A singleton s/v clause.
    Clause(SvClause),
}

impl Comp {
    /// A generator node with an unassigned loop id.
    pub fn gen(var: impl Into<String>, range: Range, body: Comp) -> Comp {
        Comp::Gen {
            id: LoopId(u32::MAX),
            var: var.into(),
            range,
            body: Box::new(body),
        }
    }

    /// A clause leaf.
    pub fn clause(subs: Vec<Expr>, value: Expr) -> Comp {
        Comp::Clause(SvClause::new(subs, value))
    }

    /// An append node; flattens nested appends.
    pub fn append(children: Vec<Comp>) -> Comp {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Comp::Append(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Comp::Append(flat)
        }
    }

    /// Visit every comp node, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Comp)) {
        f(self);
        match self {
            Comp::Append(cs) => {
                for c in cs {
                    c.walk(f);
                }
            }
            Comp::Gen { body, .. } | Comp::Guard { body, .. } | Comp::Let { body, .. } => {
                body.walk(f)
            }
            Comp::Clause(_) => {}
        }
    }

    /// All clauses in source order.
    pub fn clauses(&self) -> Vec<&SvClause> {
        let mut out = Vec::new();
        self.walk(&mut |c| {
            if let Comp::Clause(sv) = c {
                out.push(sv);
            }
        });
        out
    }

    /// Number of clauses in the tree.
    pub fn clause_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |c| {
            if matches!(c, Comp::Clause(_)) {
                n += 1;
            }
        });
        n
    }
}

/// Whether an array is an ordinary monolithic array (exactly one
/// definition per element) or a Haskell `accumArray`-style accumulated
/// array (default + combining function).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayKind {
    /// `array bounds svpairs` — collisions and empties are errors.
    Monolithic,
    /// `accumArray f z bounds svpairs`.
    Accumulated {
        /// Name of the combining function (`+`, `max`, ... or a `Call`
        /// target). `commutative` records whether reordering of the
        /// s/v pair list is permitted (§7).
        combine: BinOp,
        default: Expr,
        commutative: bool,
    },
}

/// One array definition: `name = array ((l1,h1),...,(lk,hk)) comp`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    pub name: String,
    /// Per-dimension `(low, high)` bounds (inclusive).
    pub bounds: Vec<(Expr, Expr)>,
    pub comp: Comp,
    pub kind: ArrayKind,
}

impl ArrayDef {
    /// An ordinary monolithic definition.
    pub fn monolithic(name: impl Into<String>, bounds: Vec<(Expr, Expr)>, comp: Comp) -> ArrayDef {
        ArrayDef {
            name: name.into(),
            bounds,
            comp,
            kind: ArrayKind::Monolithic,
        }
    }

    /// Dimensionality of the array.
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// `true` if any clause's value references the array being defined
    /// (the directly-visible recursion the paper's `letrec*` makes
    /// explicit).
    pub fn is_self_recursive(&self) -> bool {
        self.comp
            .clauses()
            .iter()
            .any(|c| c.value.referenced_arrays().contains(&self.name))
    }
}

/// A top-level binding form.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// `input u (l1,h1) ... ;` — an externally supplied array.
    Input {
        name: String,
        bounds: Vec<(Expr, Expr)>,
    },
    /// `let a = array ...` — non-recursive definition.
    Let(ArrayDef),
    /// `letrec* a = array ... and b = array ...` — mutually recursive
    /// definitions forced in a strict context (§2).
    LetrecStar(Vec<ArrayDef>),
    /// `b = bigupd a comp` — semi-monolithic update of `a` (§9). The
    /// result `name` may equal `base` conceptually; we bind a new name
    /// and the analysis decides whether the update can run in place.
    BigUpd {
        name: String,
        base: String,
        comp: Comp,
    },
    /// `let s = reduce (op) init [ expr | quals ];` — a scalar fold
    /// over a comprehension (§3.1: "the application of foldl to a list
    /// comprehension over arithmetic sequence generators ... translate
    /// such foldl calls into DO loops"). `sum [...]` and
    /// `product [...]` are sugar. The comprehension's clauses carry no
    /// subscripts (empty `subs`).
    Reduce {
        name: String,
        op: BinOp,
        init: Expr,
        comp: Comp,
    },
}

impl Binding {
    /// Names bound by this binding.
    pub fn names(&self) -> Vec<&str> {
        match self {
            Binding::Input { name, .. }
            | Binding::BigUpd { name, .. }
            | Binding::Reduce { name, .. } => vec![name],
            Binding::Let(d) => vec![&d.name],
            Binding::LetrecStar(ds) => ds.iter().map(|d| d.name.as_str()).collect(),
        }
    }
}

/// A whole program: named integer parameters (sizes like `n`), then a
/// sequence of bindings. The arrays named in `results` are the program's
/// outputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Free integer parameters, e.g. `param n;`.
    pub params: Vec<String>,
    pub bindings: Vec<Binding>,
    /// Output array names; defaults to the last binding's names.
    pub results: Vec<String>,
}

impl Program {
    /// A program with no parameters or bindings.
    pub fn new() -> Program {
        Program::default()
    }

    /// Look up an array definition (in `Let` or `LetrecStar`) by name.
    pub fn array_def(&self, name: &str) -> Option<&ArrayDef> {
        for b in &self.bindings {
            match b {
                Binding::Let(d) if d.name == name => return Some(d),
                Binding::LetrecStar(ds) => {
                    if let Some(d) = ds.iter().find(|d| d.name == name) {
                        return Some(d);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// The names this program produces (explicit `results`, else the
    /// names of the final binding).
    pub fn result_names(&self) -> Vec<String> {
        if !self.results.is_empty() {
            return self.results.clone();
        }
        self.bindings
            .last()
            .map(|b| b.names().iter().map(|s| s.to_string()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clause() -> Comp {
        // [ i := a!(i-1) + 1 ]
        Comp::clause(
            vec![Expr::var("i")],
            Expr::add(
                Expr::index1("a", Expr::sub(Expr::var("i"), Expr::int(1))),
                Expr::int(1),
            ),
        )
    }

    #[test]
    fn referenced_arrays_dedups_in_order() {
        let e = Expr::add(
            Expr::index1("a", Expr::int(1)),
            Expr::add(
                Expr::index1("b", Expr::int(2)),
                Expr::index1("a", Expr::int(3)),
            ),
        );
        assert_eq!(
            e.referenced_arrays(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn subst_replaces_free_occurrences() {
        let e = Expr::add(Expr::var("i"), Expr::mul(Expr::var("j"), Expr::var("i")));
        let r = e.subst("i", &Expr::int(7));
        assert_eq!(
            r,
            Expr::add(Expr::int(7), Expr::mul(Expr::var("j"), Expr::int(7)))
        );
    }

    #[test]
    fn subst_respects_let_shadowing() {
        // let i = i + 1 in i  — RHS sees outer i, body sees bound i.
        let e = Expr::Let {
            binds: vec![("i".into(), Expr::add(Expr::var("i"), Expr::int(1)))],
            body: Box::new(Expr::var("i")),
        };
        let r = e.subst("i", &Expr::int(10));
        assert_eq!(
            r,
            Expr::Let {
                binds: vec![("i".into(), Expr::add(Expr::int(10), Expr::int(1)))],
                body: Box::new(Expr::var("i")),
            }
        );
    }

    #[test]
    fn append_flattens() {
        let c = Comp::append(vec![
            Comp::append(vec![sample_clause(), sample_clause()]),
            sample_clause(),
        ]);
        match c {
            Comp::Append(cs) => assert_eq!(cs.len(), 3),
            _ => panic!("expected append"),
        }
    }

    #[test]
    fn append_of_one_collapses() {
        let c = Comp::append(vec![sample_clause()]);
        assert!(matches!(c, Comp::Clause(_)));
    }

    #[test]
    fn clause_count_counts_leaves() {
        let c = Comp::gen(
            "i",
            Range::new(Expr::int(1), Expr::var("n")),
            Comp::append(vec![sample_clause(), sample_clause()]),
        );
        assert_eq!(c.clause_count(), 2);
        assert_eq!(c.clauses().len(), 2);
    }

    #[test]
    fn self_recursion_detected() {
        let def = ArrayDef::monolithic(
            "a",
            vec![(Expr::int(1), Expr::var("n"))],
            Comp::gen(
                "i",
                Range::new(Expr::int(1), Expr::var("n")),
                sample_clause(),
            ),
        );
        assert!(def.is_self_recursive());
        let def2 = ArrayDef::monolithic(
            "b",
            vec![(Expr::int(1), Expr::var("n"))],
            Comp::gen(
                "i",
                Range::new(Expr::int(1), Expr::var("n")),
                sample_clause(),
            ),
        );
        assert!(!def2.is_self_recursive());
    }

    #[test]
    fn result_names_default_to_last_binding() {
        let mut p = Program::new();
        p.bindings.push(Binding::Input {
            name: "u".into(),
            bounds: vec![(Expr::int(1), Expr::var("n"))],
        });
        p.bindings.push(Binding::Let(ArrayDef::monolithic(
            "a",
            vec![(Expr::int(1), Expr::var("n"))],
            sample_clause(),
        )));
        assert_eq!(p.result_names(), vec!["a".to_string()]);
    }
}
