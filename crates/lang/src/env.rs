//! Compile-time constant environments.
//!
//! The paper assumes statically known loop bounds ("the loop bounds are
//! statically known", §5). A [`ConstEnv`] binds the program's integer
//! parameters (`n`, `m`, ...) to concrete values so that bounds and
//! subscripts fold to the constants the dependence tests need.

use std::collections::BTreeMap;

/// A mapping from parameter names to concrete integer values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstEnv {
    vals: BTreeMap<String, i64>,
}

impl ConstEnv {
    /// An empty environment.
    pub fn new() -> ConstEnv {
        ConstEnv::default()
    }

    /// Build an environment from `(name, value)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, i64)>) -> ConstEnv {
        let mut e = ConstEnv::new();
        for (k, v) in pairs {
            e.bind(k, v);
        }
        e
    }

    /// Bind (or rebind) a parameter.
    pub fn bind(&mut self, name: impl Into<String>, value: i64) -> &mut Self {
        self.vals.insert(name.into(), value);
        self
    }

    /// Look up a parameter value.
    pub fn lookup(&self, name: &str) -> Option<i64> {
        self.vals.get(name).copied()
    }

    /// `true` if `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vals.contains_key(name)
    }

    /// Iterate over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.vals.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` when no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

impl<'a> FromIterator<(&'a str, i64)> for ConstEnv {
    fn from_iter<T: IntoIterator<Item = (&'a str, i64)>>(iter: T) -> Self {
        ConstEnv::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut e = ConstEnv::new();
        e.bind("n", 100).bind("m", 20);
        assert_eq!(e.lookup("n"), Some(100));
        assert_eq!(e.lookup("m"), Some(20));
        assert_eq!(e.lookup("k"), None);
        assert!(e.contains("n"));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn rebind_overwrites() {
        let mut e = ConstEnv::new();
        e.bind("n", 1);
        e.bind("n", 2);
        assert_eq!(e.lookup("n"), Some(2));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn from_pairs_collects() {
        let e: ConstEnv = [("a", 1), ("b", 2)].into_iter().collect();
        assert_eq!(e.lookup("a"), Some(1));
        assert_eq!(e.lookup("b"), Some(2));
    }
}
