//! A fluent builder API for constructing programs without parsing —
//! for hosts that generate array programs programmatically (and for
//! tests that want structured construction).
//!
//! ```
//! use hac_lang::build::{comp, e, program};
//!
//! // letrec* a = array (1,n) ([1 := 1] ++ [i := a!(i-1)*2 | i <- [2..n]])
//! let p = program()
//!     .param("n")
//!     .letrec_star(
//!         "a",
//!         [(e(1), e("n"))],
//!         comp()
//!             .clause([e(1)], e(1))
//!             .append(
//!                 comp()
//!                     .clause([e("i")], e("a").idx([e("i") - e(1)]) * e(2))
//!                     .generate("i", e(2), e("n")),
//!             ),
//!     )
//!     .finish();
//! assert_eq!(p.bindings.len(), 1);
//! ```

use crate::ast::{ArrayDef, ArrayKind, BinOp, Binding, Comp, Expr, Program, Range, UnOp};

/// An expression wrapper with operator overloading.
#[derive(Debug, Clone, PartialEq)]
pub struct E(pub Expr);

/// Build an expression from a literal, a variable name, or another
/// expression.
pub fn e(v: impl IntoE) -> E {
    v.into_e()
}

/// Conversion into [`E`].
pub trait IntoE {
    /// Convert the value into a wrapped expression.
    fn into_e(self) -> E;
}

impl IntoE for E {
    fn into_e(self) -> E {
        self
    }
}
impl IntoE for i64 {
    fn into_e(self) -> E {
        E(Expr::Int(self))
    }
}
impl IntoE for f64 {
    fn into_e(self) -> E {
        E(Expr::Num(self))
    }
}
impl IntoE for &str {
    fn into_e(self) -> E {
        E(Expr::var(self))
    }
}
impl IntoE for Expr {
    fn into_e(self) -> E {
        E(self)
    }
}

impl E {
    /// Array selection `self!(subs)` — the receiver must be a variable.
    ///
    /// # Panics
    /// Panics when the receiver is not a plain variable.
    pub fn idx(self, subs: impl IntoIterator<Item = E>) -> E {
        let Expr::Var(name) = self.0 else {
            panic!("`!` selects from an array variable")
        };
        E(Expr::Index {
            array: name,
            subs: subs.into_iter().map(|s| s.0).collect(),
        })
    }

    /// `if self then t else f`.
    pub fn if_else(self, t: E, f: E) -> E {
        E(Expr::If {
            cond: Box::new(self.0),
            then: Box::new(t.0),
            els: Box::new(f.0),
        })
    }

    /// Comparison `self == other`.
    pub fn eq(self, other: impl IntoE) -> E {
        E(Expr::bin(BinOp::Eq, self.0, other.into_e().0))
    }

    /// Comparison `self < other`.
    pub fn lt(self, other: impl IntoE) -> E {
        E(Expr::bin(BinOp::Lt, self.0, other.into_e().0))
    }

    /// Comparison `self > other`.
    pub fn gt(self, other: impl IntoE) -> E {
        E(Expr::bin(BinOp::Gt, self.0, other.into_e().0))
    }

    /// `self mod other`.
    pub fn modulo(self, other: impl IntoE) -> E {
        E(Expr::bin(BinOp::Mod, self.0, other.into_e().0))
    }

    /// Unary negation (also available via `-e`).
    #[allow(clippy::should_implement_trait)] // `-e` is also provided via Neg
    pub fn neg(self) -> E {
        E(Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self.0),
        })
    }

    /// Unwrap the underlying AST expression.
    pub fn into_expr(self) -> Expr {
        self.0
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: IntoE> std::ops::$trait<R> for E {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                E(Expr::bin($op, self.0, rhs.into_e().0))
            }
        }
    };
}
impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);

impl std::ops::Neg for E {
    type Output = E;
    fn neg(self) -> E {
        E::neg(self)
    }
}

/// A comprehension under construction.
#[derive(Debug, Clone, Default)]
pub struct CompBuilder {
    parts: Vec<Comp>,
}

/// Start an empty comprehension.
pub fn comp() -> CompBuilder {
    CompBuilder::default()
}

impl CompBuilder {
    /// Append a clause `[ subs := value ]`.
    pub fn clause(mut self, subs: impl IntoIterator<Item = E>, value: E) -> CompBuilder {
        self.parts.push(Comp::clause(
            subs.into_iter().map(|s| s.0).collect(),
            value.0,
        ));
        self
    }

    /// Append another comprehension with `++`.
    pub fn append(mut self, other: CompBuilder) -> CompBuilder {
        self.parts.push(other.build());
        self
    }

    /// Wrap everything built *so far* in a generator
    /// `| var <- [lo..hi]`.
    pub fn generate(self, var: &str, lo: E, hi: E) -> CompBuilder {
        self.generate_by(var, lo, hi, 1)
    }

    /// Wrap in a strided generator `| var <- [lo, lo+step .. hi]`.
    pub fn generate_by(self, var: &str, lo: E, hi: E, step: i64) -> CompBuilder {
        let body = self.build();
        CompBuilder {
            parts: vec![Comp::gen(var, Range::stepped(lo.0, hi.0, step), body)],
        }
    }

    /// Wrap everything built so far in a guard.
    pub fn guard(self, cond: E) -> CompBuilder {
        let body = self.build();
        CompBuilder {
            parts: vec![Comp::Guard {
                cond: cond.0,
                body: Box::new(body),
            }],
        }
    }

    /// Wrap everything built so far in `where` bindings.
    pub fn wher(self, binds: impl IntoIterator<Item = (&'static str, E)>) -> CompBuilder {
        let body = self.build();
        CompBuilder {
            parts: vec![Comp::Let {
                binds: binds
                    .into_iter()
                    .map(|(n, ex)| (n.to_string(), ex.0))
                    .collect(),
                body: Box::new(body),
            }],
        }
    }

    /// Finish into a `Comp` (an append when several parts were added).
    ///
    /// # Panics
    /// Panics on an empty builder.
    pub fn build(self) -> Comp {
        assert!(!self.parts.is_empty(), "empty comprehension");
        Comp::append(self.parts)
    }
}

/// A program under construction.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
}

/// Start an empty program.
pub fn program() -> ProgramBuilder {
    ProgramBuilder::default()
}

impl ProgramBuilder {
    /// Declare an integer parameter.
    pub fn param(mut self, name: &str) -> ProgramBuilder {
        self.program.params.push(name.to_string());
        self
    }

    /// Declare an input array.
    pub fn input(mut self, name: &str, bounds: impl IntoIterator<Item = (E, E)>) -> ProgramBuilder {
        self.program.bindings.push(Binding::Input {
            name: name.to_string(),
            bounds: bounds.into_iter().map(|(l, h)| (l.0, h.0)).collect(),
        });
        self
    }

    /// Bind a non-recursive monolithic array.
    pub fn let_array(
        mut self,
        name: &str,
        bounds: impl IntoIterator<Item = (E, E)>,
        comp: CompBuilder,
    ) -> ProgramBuilder {
        self.program.bindings.push(Binding::Let(ArrayDef {
            name: name.to_string(),
            bounds: bounds.into_iter().map(|(l, h)| (l.0, h.0)).collect(),
            comp: comp.build(),
            kind: ArrayKind::Monolithic,
        }));
        self
    }

    /// Bind a recursive array in a strict context (`letrec*`).
    pub fn letrec_star(
        mut self,
        name: &str,
        bounds: impl IntoIterator<Item = (E, E)>,
        comp: CompBuilder,
    ) -> ProgramBuilder {
        self.program
            .bindings
            .push(Binding::LetrecStar(vec![ArrayDef {
                name: name.to_string(),
                bounds: bounds.into_iter().map(|(l, h)| (l.0, h.0)).collect(),
                comp: comp.build(),
                kind: ArrayKind::Monolithic,
            }]));
        self
    }

    /// Bind a mutually recursive `letrec*` group.
    pub fn letrec_star_group(
        mut self,
        defs: impl IntoIterator<Item = (&'static str, Vec<(E, E)>, CompBuilder)>,
    ) -> ProgramBuilder {
        self.program.bindings.push(Binding::LetrecStar(
            defs.into_iter()
                .map(|(name, bounds, comp)| ArrayDef {
                    name: name.to_string(),
                    bounds: bounds.into_iter().map(|(l, h)| (l.0, h.0)).collect(),
                    comp: comp.build(),
                    kind: ArrayKind::Monolithic,
                })
                .collect(),
        ));
        self
    }

    /// Bind `name = bigupd base comp`.
    pub fn bigupd(mut self, name: &str, base: &str, comp: CompBuilder) -> ProgramBuilder {
        self.program.bindings.push(Binding::BigUpd {
            name: name.to_string(),
            base: base.to_string(),
            comp: comp.build(),
        });
        self
    }

    /// Declare result arrays.
    pub fn result(mut self, names: impl IntoIterator<Item = &'static str>) -> ProgramBuilder {
        self.program
            .results
            .extend(names.into_iter().map(str::to_string));
        self
    }

    /// Finish into a [`Program`].
    pub fn finish(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::program_to_string;

    #[test]
    fn builder_matches_parser() {
        let built = program()
            .param("n")
            .letrec_star(
                "a",
                [(e(1), e("n"))],
                comp().clause([e(1)], e(1)).append(
                    comp()
                        .clause([e("i")], e("a").idx([e("i") - e(1)]) * e(2))
                        .generate("i", e(2), e("n")),
                ),
            )
            .finish();
        let parsed = parse_program(
            "param n;\nletrec* a = array (1,n) \
             ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_roundtrips_through_pretty() {
        let built = program()
            .param("n")
            .input("u", [(e(1), e("n"))])
            .let_array(
                "a",
                [(e(1), e("n"))],
                comp()
                    .clause([e("i")], e("u").idx([e("i")]) + e(1))
                    .guard(e("i").gt(2))
                    .generate("i", e(1), e("n")),
            )
            .result(["a"])
            .finish();
        let text = program_to_string(&built);
        let back = parse_program(&text).unwrap();
        assert_eq!(built, back, "{text}");
    }

    #[test]
    fn operators_compose() {
        let expr = (e("i") * 3 - e(1)).into_expr();
        let parsed = crate::parser::parse_expr("i * 3 - 1").unwrap();
        assert_eq!(expr, parsed);
        let neg = (-e("x")).into_expr();
        assert_eq!(neg, crate::parser::parse_expr("-x").unwrap());
    }

    #[test]
    fn where_and_stride() {
        let built = comp()
            .clause([e("i")], e("v"))
            .wher([("v", e("i") + e(1))])
            .generate_by("i", e(1), e(9), 2)
            .build();
        let parsed =
            crate::parser::parse_comp("[ i := v where v = i + 1 | i <- [1,3..9] ]").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn bigupd_and_group() {
        let p = program()
            .param("n")
            .input("a", [(e(1), e("n"))])
            .bigupd(
                "b",
                "a",
                comp()
                    .clause([e("i")], e("a").idx([e("i")]) * e(2))
                    .generate("i", e(1), e("n")),
            )
            .finish();
        assert_eq!(p.bindings.len(), 2);
        let g = program()
            .letrec_star_group([
                (
                    "x",
                    vec![(e(1), e(2))],
                    comp()
                        .clause([e(1)], e(0))
                        .append(comp().clause([e(2)], e(1))),
                ),
                (
                    "y",
                    vec![(e(1), e(1))],
                    comp().clause([e(1)], e("x").idx([e(2)])),
                ),
            ])
            .finish();
        match &g.bindings[0] {
            Binding::LetrecStar(ds) => assert_eq!(ds.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
