//! Clause and loop numbering, and loop-nest extraction.
//!
//! Subscript analysis and scheduling both work with *identities*: two
//! array references share a loop when they sit under the same generator
//! *node*, not merely under generators that happen to use the same index
//! name. This pass assigns a [`ClauseId`] to every s/v clause and a
//! [`LoopId`] to every generator, in left-to-right source order, and can
//! then extract each clause's *path*: the exact interleaving of loops,
//! guards and `let` bindings from the comprehension root down to the
//! clause.

use crate::ast::{ClauseId, Comp, Expr, LoopId, Range, SvClause};

/// One generator on the path to a clause.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopFrame {
    pub id: LoopId,
    pub var: String,
    pub range: Range,
}

/// One step on the path from a comprehension root to a clause.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    Loop(LoopFrame),
    Guard(Expr),
    Let(Vec<(String, Expr)>),
}

/// A clause together with its full context inside the comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseContext {
    pub clause: SvClause,
    /// Outside-in path of loops/guards/lets enclosing the clause.
    pub path: Vec<PathStep>,
}

impl ClauseContext {
    /// The enclosing loops, outermost first.
    pub fn loops(&self) -> Vec<&LoopFrame> {
        self.path
            .iter()
            .filter_map(|s| match s {
                PathStep::Loop(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// Depth of loop nesting around the clause.
    pub fn depth(&self) -> usize {
        self.loops().len()
    }

    /// The number of leading loops shared with another clause context
    /// (shared = same [`LoopId`]).
    pub fn shared_prefix_len(&self, other: &ClauseContext) -> usize {
        self.loops()
            .iter()
            .zip(other.loops().iter())
            .take_while(|(a, b)| a.id == b.id)
            .count()
    }
}

/// Assign ids to every clause and generator in the tree, in source
/// order, starting from `next_clause` / `next_loop`. Returns the next
/// unused ids, allowing several comprehensions in one program to share
/// an id space.
pub fn number_comp(comp: &mut Comp, next_clause: &mut u32, next_loop: &mut u32) {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                number_comp(c, next_clause, next_loop);
            }
        }
        Comp::Gen { id, body, .. } => {
            *id = LoopId(*next_loop);
            *next_loop += 1;
            number_comp(body, next_clause, next_loop);
        }
        Comp::Guard { body, .. } | Comp::Let { body, .. } => {
            number_comp(body, next_clause, next_loop);
        }
        Comp::Clause(sv) => {
            sv.id = ClauseId(*next_clause);
            *next_clause += 1;
        }
    }
}

/// Assign ids starting at zero. Returns `(clause_count, loop_count)`.
pub fn number_clauses(comp: &mut Comp) -> (u32, u32) {
    let (mut c, mut l) = (0, 0);
    number_comp(comp, &mut c, &mut l);
    (c, l)
}

/// Extract every clause's [`ClauseContext`], in source (= id) order.
///
/// Call [`number_clauses`] first; contexts of unnumbered trees are still
/// produced but carry the placeholder ids.
pub fn clause_contexts(comp: &Comp) -> Vec<ClauseContext> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    collect(comp, &mut path, &mut out);
    out
}

fn collect(comp: &Comp, path: &mut Vec<PathStep>, out: &mut Vec<ClauseContext>) {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                collect(c, path, out);
            }
        }
        Comp::Gen {
            id,
            var,
            range,
            body,
        } => {
            path.push(PathStep::Loop(LoopFrame {
                id: *id,
                var: var.clone(),
                range: range.clone(),
            }));
            collect(body, path, out);
            path.pop();
        }
        Comp::Guard { cond, body } => {
            path.push(PathStep::Guard(cond.clone()));
            collect(body, path, out);
            path.pop();
        }
        Comp::Let { binds, body } => {
            path.push(PathStep::Let(binds.clone()));
            collect(body, path, out);
            path.pop();
        }
        Comp::Clause(sv) => {
            out.push(ClauseContext {
                clause: sv.clone(),
                path: path.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Comp, Expr, Range};

    /// letrec* a = [* [3i := ..] ++ [3i-1 := ..] | i <- [1..100] *]
    fn two_clause_loop() -> Comp {
        Comp::gen(
            "i",
            Range::new(Expr::int(1), Expr::int(100)),
            Comp::append(vec![
                Comp::clause(vec![Expr::mul(Expr::int(3), Expr::var("i"))], Expr::int(0)),
                Comp::clause(
                    vec![Expr::sub(
                        Expr::mul(Expr::int(3), Expr::var("i")),
                        Expr::int(1),
                    )],
                    Expr::int(0),
                ),
            ]),
        )
    }

    #[test]
    fn numbering_is_source_order() {
        let mut c = two_clause_loop();
        let (nc, nl) = number_clauses(&mut c);
        assert_eq!((nc, nl), (2, 1));
        let ids: Vec<u32> = c.clauses().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn contexts_capture_loops() {
        let mut c = two_clause_loop();
        number_clauses(&mut c);
        let ctxs = clause_contexts(&c);
        assert_eq!(ctxs.len(), 2);
        for ctx in &ctxs {
            assert_eq!(ctx.depth(), 1);
            assert_eq!(ctx.loops()[0].var, "i");
        }
        assert_eq!(ctxs[0].shared_prefix_len(&ctxs[1]), 1);
    }

    #[test]
    fn same_name_different_loops_not_shared() {
        // [ [i := 0] | i <- [1..2] ] ++ [ [i := 1] | i <- [3..4] ]
        let mut c = Comp::append(vec![
            Comp::gen(
                "i",
                Range::new(Expr::int(1), Expr::int(2)),
                Comp::clause(vec![Expr::var("i")], Expr::int(0)),
            ),
            Comp::gen(
                "i",
                Range::new(Expr::int(3), Expr::int(4)),
                Comp::clause(vec![Expr::var("i")], Expr::int(1)),
            ),
        ]);
        number_clauses(&mut c);
        let ctxs = clause_contexts(&c);
        assert_eq!(ctxs[0].shared_prefix_len(&ctxs[1]), 0);
    }

    #[test]
    fn guards_and_lets_recorded_in_path() {
        let mut c = Comp::gen(
            "i",
            Range::new(Expr::int(1), Expr::int(10)),
            Comp::Let {
                binds: vec![("v".into(), Expr::var("i"))],
                body: Box::new(Comp::Guard {
                    cond: Expr::bin(BinOp::Gt, Expr::var("i"), Expr::int(1)),
                    body: Box::new(Comp::clause(vec![Expr::var("i")], Expr::var("v"))),
                }),
            },
        );
        number_clauses(&mut c);
        let ctxs = clause_contexts(&c);
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].path.len(), 3);
        assert!(matches!(ctxs[0].path[0], PathStep::Loop(_)));
        assert!(matches!(ctxs[0].path[1], PathStep::Let(_)));
        assert!(matches!(ctxs[0].path[2], PathStep::Guard(_)));
    }

    #[test]
    fn nested_loops_count() {
        let mut c = Comp::gen(
            "i",
            Range::new(Expr::int(1), Expr::int(10)),
            Comp::gen(
                "j",
                Range::new(Expr::int(1), Expr::int(20)),
                Comp::clause(vec![Expr::var("i"), Expr::var("j")], Expr::int(0)),
            ),
        );
        let (nc, nl) = number_clauses(&mut c);
        assert_eq!((nc, nl), (1, 2));
        let ctxs = clause_contexts(&c);
        assert_eq!(ctxs[0].depth(), 2);
    }
}
