//! # hac-lang
//!
//! Front end for the `hac` reproduction of Anderson & Hudak,
//! *"Compilation of Haskell Array Comprehensions for Scientific
//! Computing"* (PLDI 1990).
//!
//! This crate defines the paper's generalized-Haskell surface language —
//! array comprehensions over *nested list comprehensions* `[* ... *]`,
//! the `:=` subscript/value operator, strict-context recursion
//! `letrec*`, and the semi-monolithic update `bigupd` — together with:
//!
//! * a lexer and recursive-descent parser ([`parser::parse_program`]),
//! * a pretty-printer that round-trips through the parser
//!   ([`pretty::program_to_string`]),
//! * the `TE` translation of nested comprehensions into primitive list
//!   constructs ([`core::translate`], §3.1 of the paper),
//! * clause/loop numbering and loop-nest extraction ([`number`]),
//! * loop normalization to `[1..M]` step 1 and affine subscript
//!   extraction ([`normalize`], [`affine`], §6).
//!
//! # Example
//!
//! ```
//! use hac_lang::parser::parse_program;
//! use hac_lang::number::{clause_contexts, number_clauses};
//!
//! let mut program = parse_program(
//!     "param n;\n\
//!      letrec* a = array (1,n)\n\
//!        [ i := if i == 1 then 1 else a!(i-1) + 1 | i <- [1..n] ];\n",
//! )?;
//! let def = match &mut program.bindings[0] {
//!     hac_lang::ast::Binding::LetrecStar(defs) => &mut defs[0],
//!     _ => unreachable!(),
//! };
//! number_clauses(&mut def.comp);
//! let contexts = clause_contexts(&def.comp);
//! assert_eq!(contexts.len(), 1);
//! assert_eq!(contexts[0].depth(), 1);
//! # Ok::<(), hac_lang::parser::ParseError>(())
//! ```

pub mod affine;
pub mod ast;
pub mod build;
pub mod core;
pub mod env;
pub mod lexer;
pub mod normalize;
pub mod number;
pub mod parser;
pub mod pretty;

pub use affine::Affine;
pub use ast::{
    ArrayDef, ArrayKind, BinOp, Binding, ClauseId, Comp, Expr, LoopId, Program, Range, SvClause,
    UnOp,
};
pub use env::ConstEnv;
pub use normalize::{normalize_loop, normalize_nest, NormalizedLoop};
pub use number::{clause_contexts, number_clauses, ClauseContext, LoopFrame, PathStep};
pub use parser::{parse_comp, parse_expr, parse_program, ParseError};
