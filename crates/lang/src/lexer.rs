//! Lexer for the paper's surface syntax.
//!
//! Notable multi-character tokens: the nested-comprehension brackets
//! `[*` and `*]`, the s/v pair operator `:=`, the generator arrow `<-`,
//! append `++`, the range ellipsis `..`, and the `letrec*` keyword.
//! Comments run from `--` to end of line, as in Haskell.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / names
    Int(i64),
    Float(f64),
    Ident(String),
    // keywords
    Param,
    Input,
    Let,
    LetrecStar,
    And,
    In,
    Where,
    Array,
    AccumArray,
    BigUpd,
    If,
    Then,
    Else,
    Result,
    Mod,
    Not,
    Min,
    Max,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LStarBracket, // [*
    StarRBracket, // *]
    Comma,
    Semi,
    Bar,
    Bang,
    Assign,   // :=
    Equals,   // =
    Arrow,    // <-
    DotDot,   // ..
    PlusPlus, // ++
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne, // /=
    AndAnd,
    OrOr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Param => write!(f, "param"),
            Tok::Input => write!(f, "input"),
            Tok::Let => write!(f, "let"),
            Tok::LetrecStar => write!(f, "letrec*"),
            Tok::And => write!(f, "and"),
            Tok::In => write!(f, "in"),
            Tok::Where => write!(f, "where"),
            Tok::Array => write!(f, "array"),
            Tok::AccumArray => write!(f, "accumArray"),
            Tok::BigUpd => write!(f, "bigupd"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::Result => write!(f, "result"),
            Tok::Mod => write!(f, "mod"),
            Tok::Not => write!(f, "not"),
            Tok::Min => write!(f, "min"),
            Tok::Max => write!(f, "max"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LStarBracket => write!(f, "[*"),
            Tok::StarRBracket => write!(f, "*]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Bar => write!(f, "|"),
            Tok::Bang => write!(f, "!"),
            Tok::Assign => write!(f, ":="),
            Tok::Equals => write!(f, "="),
            Tok::Arrow => write!(f, "<-"),
            Tok::DotDot => write!(f, ".."),
            Tok::PlusPlus => write!(f, "++"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "/="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
        }
    }
}

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
///
/// # Errors
/// Returns [`LexError`] on unexpected characters or malformed numeric
/// literals.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($t:expr) => {
            out.push(SpannedTok { tok: $t, line })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < n && bytes[i + 1] == '-' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '[' if i + 1 < n && bytes[i + 1] == '*' => {
                push!(Tok::LStarBracket);
                i += 2;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            '*' if i + 1 < n && bytes[i + 1] == ']' => {
                push!(Tok::StarRBracket);
                i += 2;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            '|' if i + 1 < n && bytes[i + 1] == '|' => {
                push!(Tok::OrOr);
                i += 2;
            }
            '|' => {
                push!(Tok::Bar);
                i += 1;
            }
            '!' => {
                push!(Tok::Bang);
                i += 1;
            }
            ':' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(Tok::Assign);
                i += 2;
            }
            '=' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(Tok::EqEq);
                i += 2;
            }
            '=' => {
                push!(Tok::Equals);
                i += 1;
            }
            '<' if i + 1 < n && bytes[i + 1] == '-' => {
                push!(Tok::Arrow);
                i += 2;
            }
            '<' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(Tok::Le);
                i += 2;
            }
            '<' => {
                push!(Tok::Lt);
                i += 1;
            }
            '>' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(Tok::Ge);
                i += 2;
            }
            '>' => {
                push!(Tok::Gt);
                i += 1;
            }
            '+' if i + 1 < n && bytes[i + 1] == '+' => {
                push!(Tok::PlusPlus);
                i += 2;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
            }
            '-' => {
                push!(Tok::Minus);
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '=' => {
                push!(Tok::Ne);
                i += 2;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '&' if i + 1 < n && bytes[i + 1] == '&' => {
                push!(Tok::AndAnd);
                i += 2;
            }
            '.' if i + 1 < n && bytes[i + 1] == '.' => {
                push!(Tok::DotDot);
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' begins a float only if followed by a digit
                // (so `1..n` lexes as Int DotDot Ident).
                let is_float = i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                        i += 1;
                        if i < n && (bytes[i] == '+' || bytes[i] == '-') {
                            i += 1;
                        }
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        line,
                        message: format!("bad float literal `{text}`: {e}"),
                    })?;
                    push!(Tok::Float(v));
                } else {
                    let text: String = bytes[start..i].iter().collect();
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        line,
                        message: format!("bad integer literal `{text}`: {e}"),
                    })?;
                    push!(Tok::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = match text.as_str() {
                    "param" => Tok::Param,
                    "input" => Tok::Input,
                    "let" => Tok::Let,
                    "letrec" => {
                        if i < n && bytes[i] == '*' {
                            i += 1;
                            Tok::LetrecStar
                        } else {
                            return Err(LexError {
                                line,
                                message: "plain `letrec` is not supported; use `letrec*` \
                                          (strict-context recursive bindings)"
                                    .into(),
                            });
                        }
                    }
                    "and" => Tok::And,
                    "in" => Tok::In,
                    "where" => Tok::Where,
                    "array" => Tok::Array,
                    "accumArray" => Tok::AccumArray,
                    "bigupd" => Tok::BigUpd,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "result" => Tok::Result,
                    "mod" => Tok::Mod,
                    "not" => Tok::Not,
                    "min" => Tok::Min,
                    "max" => Tok::Max,
                    _ => Tok::Ident(text),
                };
                push!(tok);
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_nested_brackets() {
        assert_eq!(
            toks("[* x *]"),
            vec![Tok::LStarBracket, Tok::Ident("x".into()), Tok::StarRBracket]
        );
    }

    #[test]
    fn star_bracket_vs_multiplication() {
        assert_eq!(
            toks("i * j *]"),
            vec![
                Tok::Ident("i".into()),
                Tok::Star,
                Tok::Ident("j".into()),
                Tok::StarRBracket
            ]
        );
    }

    #[test]
    fn range_does_not_eat_float() {
        assert_eq!(
            toks("[1..n]"),
            vec![
                Tok::LBracket,
                Tok::Int(1),
                Tok::DotDot,
                Tok::Ident("n".into()),
                Tok::RBracket
            ]
        );
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5)]);
    }

    #[test]
    fn letrec_star_keyword() {
        assert_eq!(
            toks("letrec* a"),
            vec![Tok::LetrecStar, Tok::Ident("a".into())]
        );
        assert!(lex("letrec a").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":= <- <= < ++ + == = /= / .."),
            vec![
                Tok::Assign,
                Tok::Arrow,
                Tok::Le,
                Tok::Lt,
                Tok::PlusPlus,
                Tok::Plus,
                Tok::EqEq,
                Tok::Equals,
                Tok::Ne,
                Tok::Slash,
                Tok::DotDot
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- Clause 1\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn lines_tracked() {
        let ts = lex("a\nb\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn primes_allowed_in_idents() {
        assert_eq!(toks("a'"), vec![Tok::Ident("a'".into())]);
    }
}
