//! The `TE` translation of nested comprehensions into primitive list
//! constructs (§3.1 of the paper).
//!
//! ```text
//! TE{ [* E | i <- L *] }    = flatmap (\i . TE{E}) L
//! TE{ [* E | B *] }         = if B then TE{E} else []
//! TE{ E1 ++ E2 }            = TE{E1} ++ TE{E2}
//! TE{ let BINDS in E }      = let BINDS in TE{E}
//! TE{ [E] }                 = [E]
//! ```
//!
//! [`CoreList`] is the target term language. It makes the semantics of
//! nested comprehensions precise and serves as the *naive* (cons-cell
//! allocating) evaluation strategy that the deforested loop pipeline is
//! benchmarked against (experiment E11).

use crate::ast::{Comp, Expr, Range, SvClause};

/// A primitive list-language term producing a list of s/v pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreList {
    /// `[]`.
    Nil,
    /// `[s := v]` — a singleton list.
    Singleton(SvClause),
    /// `l1 ++ l2`.
    Append(Box<CoreList>, Box<CoreList>),
    /// `flatmap (\var . body) [range]`.
    FlatMap {
        var: String,
        range: Range,
        body: Box<CoreList>,
    },
    /// `if cond then body else []`.
    If { cond: Expr, body: Box<CoreList> },
    /// `let binds in body`.
    Let {
        binds: Vec<(String, Expr)>,
        body: Box<CoreList>,
    },
}

impl CoreList {
    /// Count the syntactic `flatmap` nodes (loop structure metric).
    pub fn flatmap_count(&self) -> usize {
        match self {
            CoreList::Nil | CoreList::Singleton(_) => 0,
            CoreList::Append(a, b) => a.flatmap_count() + b.flatmap_count(),
            CoreList::FlatMap { body, .. } => 1 + body.flatmap_count(),
            CoreList::If { body, .. } | CoreList::Let { body, .. } => body.flatmap_count(),
        }
    }

    /// Count the singleton (clause) leaves.
    pub fn singleton_count(&self) -> usize {
        match self {
            CoreList::Nil => 0,
            CoreList::Singleton(_) => 1,
            CoreList::Append(a, b) => a.singleton_count() + b.singleton_count(),
            CoreList::FlatMap { body, .. }
            | CoreList::If { body, .. }
            | CoreList::Let { body, .. } => body.singleton_count(),
        }
    }
}

/// The `TE` translation: nested comprehension → primitive list term.
pub fn translate(comp: &Comp) -> CoreList {
    match comp {
        Comp::Append(cs) => {
            let mut terms: Vec<CoreList> = cs.iter().map(translate).collect();
            // Right-fold into binary appends: e1 ++ (e2 ++ (...)).
            let mut acc = terms.pop().unwrap_or(CoreList::Nil);
            while let Some(t) = terms.pop() {
                acc = CoreList::Append(Box::new(t), Box::new(acc));
            }
            acc
        }
        Comp::Gen {
            var, range, body, ..
        } => CoreList::FlatMap {
            var: var.clone(),
            range: range.clone(),
            body: Box::new(translate(body)),
        },
        Comp::Guard { cond, body } => CoreList::If {
            cond: cond.clone(),
            body: Box::new(translate(body)),
        },
        Comp::Let { binds, body } => CoreList::Let {
            binds: binds.clone(),
            body: Box::new(translate(body)),
        },
        Comp::Clause(sv) => CoreList::Singleton(sv.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_comp;

    #[test]
    fn te_translates_generators_to_flatmaps() {
        let c = parse_comp("[ (i,j) := 0 | i <- [1..4], j <- [1..5] ]").unwrap();
        let t = translate(&c);
        assert_eq!(t.flatmap_count(), 2);
        assert_eq!(t.singleton_count(), 1);
        match t {
            CoreList::FlatMap { var, body, .. } => {
                assert_eq!(var, "i");
                assert!(matches!(*body, CoreList::FlatMap { .. }));
            }
            other => panic!("expected flatmap, got {other:?}"),
        }
    }

    #[test]
    fn te_translates_guard_to_if() {
        let c = parse_comp("[ i := 1 | i <- [1..10], i > 3 ]").unwrap();
        let t = translate(&c);
        match t {
            CoreList::FlatMap { body, .. } => assert!(matches!(*body, CoreList::If { .. })),
            other => panic!("expected flatmap, got {other:?}"),
        }
    }

    #[test]
    fn te_translates_append_right_nested() {
        let c = parse_comp("[ 1 := 0 ] ++ [ 2 := 0 ] ++ [ 3 := 0 ]").unwrap();
        let t = translate(&c);
        match t {
            CoreList::Append(a, b) => {
                assert!(matches!(*a, CoreList::Singleton(_)));
                assert!(matches!(*b, CoreList::Append(_, _)));
            }
            other => panic!("expected append, got {other:?}"),
        }
        assert_eq!(
            translate(&parse_comp("[ 1 := 0 ]").unwrap()).singleton_count(),
            1
        );
    }

    #[test]
    fn te_preserves_lets() {
        let c = parse_comp("[ i := v where v = i + 1 | i <- [1..3] ]").unwrap();
        let t = translate(&c);
        match t {
            CoreList::FlatMap { body, .. } => assert!(matches!(*body, CoreList::Let { .. })),
            other => panic!("expected flatmap, got {other:?}"),
        }
    }
}
