//! # hac-schedule
//!
//! Static scheduling of array comprehensions for thunkless compilation
//! (§8) and single-threaded in-place updates (§9) — part of the `hac`
//! reproduction of Anderson & Hudak (PLDI 1990).
//!
//! Given a comprehension tree and its labeled dependence edges, the
//! [`scheduler`] chooses loop directions, orders clauses within loop
//! instances, splits loops into passes when `(<)` and `(>)` edges
//! coexist acyclically, and falls back to thunks when a cycle defeats
//! every direction. For `bigupd` updates, [`split`] breaks
//! anti-dependence cycles by node splitting so the update can run in
//! place with minimal copying. [`check`] is an executable legality
//! oracle used by the test suite.
//!
//! # Example
//!
//! ```
//! use hac_analysis::{flow_dependences, collect_refs, TestPolicy};
//! use hac_lang::{parse_comp, number_clauses, ConstEnv};
//! use hac_schedule::{schedule, ScheduleOutcome};
//!
//! let mut comp = parse_comp(
//!     "[ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]",
//! )?;
//! number_clauses(&mut comp);
//! let env = ConstEnv::from_pairs([("n", 100)]);
//! let refs = collect_refs(&comp, "a", &env).unwrap();
//! let flow = flow_dependences(&refs, "a", &TestPolicy::default());
//! match schedule(&comp, &flow.edges) {
//!     ScheduleOutcome::Thunkless(plan) => {
//!         assert_eq!(plan.loop_count(), 1);
//!     }
//!     ScheduleOutcome::NeedsThunks(reason) => panic!("{reason}"),
//! }
//! # Ok::<(), hac_lang::ParseError>(())
//! ```

pub mod check;
pub mod plan;
pub mod scheduler;
pub mod split;

pub use check::{check_plan, LegalityError};
pub use plan::{Dirn, Plan, ScheduleOutcome, Step, ThunkReason};
pub use scheduler::{schedule, schedule_with, SchedOptions};
pub use split::{
    plan_update, plan_update_with, SplitAction, SplitOptions, UpdatePlan, UpdateStrategy,
};
