//! Node splitting for single-threaded `bigupd` updates (§9).
//!
//! Anti-dependence edges are scheduled exactly like true dependences;
//! when that fails, "a cycle including at least one antidependence edge
//! can always be broken by node-splitting". Two splitting devices:
//!
//! * **Carry buffers** — for a violated *self* anti edge with constant
//!   distance carried at one loop level (Jacobi's `(=,>)` and `(>,=)`
//!   edges): keep the last `lag` iterations' overwritten values in a
//!   ring buffer sized by the loops below the carrying level ("the
//!   temporary must be a vector large enough to hold all the live
//!   values that may be overwritten by the inner loop").
//! * **Precopies** — for cross-clause anti cycles (LINPACK row swap):
//!   materialize one clause's read region into a temporary before the
//!   update runs, which deletes that clause's anti edges.
//!
//! If neither device applies (nonlinear read subscripts), fall back to
//! copying the whole base array — the naive strategy node splitting
//! exists to avoid.

use std::collections::BTreeSet;

use hac_analysis::analyze::UpdateAnalysis;
use hac_analysis::depgraph::{DepEdge, DepKind};
use hac_lang::ast::{ClauseId, Comp, LoopId};

use crate::plan::{Dirn, Plan, ScheduleOutcome, Step, ThunkReason};
use crate::scheduler::schedule;

/// One node-splitting transformation applied to the update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitAction {
    /// Redirect read `read_index` of `clause` through a ring buffer of
    /// the values overwritten during the last `lag` iterations of the
    /// clause's loop at nest position `level`.
    CarryBuffer {
        clause: ClauseId,
        read_index: usize,
        /// Position in the clause's loop nest (0 = outermost).
        level: usize,
        lag: i64,
    },
    /// Copy the region read by read `read_index` of `clause` into a
    /// temporary before the update runs, and redirect the read to it.
    Precopy { clause: ClauseId, read_index: usize },
}

/// How the update will execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Loop directions alone satisfy every anti dependence: in place,
    /// zero copies (Gauss–Seidel/SOR, row scale, SAXPY).
    InPlace,
    /// In place after node splitting; copies are bounded by the split
    /// temporaries.
    Split(Vec<SplitAction>),
    /// Whole-array copy first (the naive fallback).
    CopyWhole,
}

/// A scheduled in-place update.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatePlan {
    pub plan: Plan,
    pub strategy: UpdateStrategy,
}

/// Self anti edges labeled with the all-`=` vector are trivially
/// satisfied: within one instance the value expression is evaluated
/// before the element is stored.
fn trivially_satisfied(e: &DepEdge) -> bool {
    e.src == e.dst && e.dv.is_loop_independent()
}

/// Is this edge breakable by a carry buffer, and at which level/lag?
fn carry_candidate(e: &DepEdge) -> Option<(usize, i64)> {
    if e.src != e.dst {
        return None;
    }
    let d = e.distance.as_ref()?;
    let nonzero: Vec<(usize, i64)> = d
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| *v != 0)
        .collect();
    match nonzero.as_slice() {
        [(level, v)] => Some((*level, v.abs())),
        _ => None,
    }
}

/// Decide whether a removed edge is *actually* violated by the final
/// plan, so satisfied candidates do not pay for temporaries.
fn violated_by_plan(e: &DepEdge, plan: &Plan) -> bool {
    if e.dv.is_empty() {
        // Loop-independent edge between clauses sharing no loop: it is
        // satisfied iff every source instance runs before every sink
        // instance, i.e. the source clause's step precedes the sink's
        // in the flattened order (they can never share a loop pass).
        let order = plan.clauses();
        let p = |c: ClauseId| order.iter().position(|x| *x == c);
        match (p(e.src), p(e.dst)) {
            (Some(a), Some(b)) => a >= b,
            _ => true,
        }
    } else if let Some((level, _)) = carry_candidate(e) {
        // Single-level carried self edge: violated iff the loop at that
        // level runs against the edge. d = y − x; with d_ℓ < 0 the
        // write (sink) sits at a smaller index, so a Forward run
        // executes it first — violation. Symmetrically for Backward.
        let d = e.distance.as_ref().expect("carry candidate has distance");
        let loops = loop_dirs_for_clause(plan, e.src);
        match loops.get(level) {
            Some(Dirn::Forward) => d[level] < 0,
            Some(Dirn::Backward) => d[level] > 0,
            None => true,
        }
    } else {
        // No cheap test: assume violated.
        true
    }
}

/// The directions of the loops enclosing a clause in the plan,
/// outermost first (first pass containing the clause). Also used by
/// code generation to orient carry-buffer ring indices.
pub fn loop_dirs_for_clause(plan: &Plan, clause: ClauseId) -> Vec<Dirn> {
    fn go(steps: &[Step], clause: ClauseId, stack: &mut Vec<Dirn>) -> Option<Vec<Dirn>> {
        for s in steps {
            match s {
                Step::Clause(id) if *id == clause => return Some(stack.clone()),
                Step::Clause(_) => {}
                Step::Loop { dirn, body, .. } => {
                    stack.push(*dirn);
                    if let Some(found) = go(body, clause, stack) {
                        return Some(found);
                    }
                    stack.pop();
                }
                Step::Guard { body, .. } | Step::Let { body, .. } => {
                    if let Some(found) = go(body, clause, stack) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }
    go(&plan.steps, clause, &mut Vec::new()).unwrap_or_default()
}

/// Node-splitting knobs (ablation studies; defaults reproduce the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitOptions {
    /// Allow carry-buffer ring temporaries (§9's Jacobi device).
    pub allow_carry: bool,
    /// Allow precopying a read region (§9's row-swap device).
    pub allow_precopy: bool,
}

impl Default for SplitOptions {
    fn default() -> SplitOptions {
        SplitOptions {
            allow_carry: true,
            allow_precopy: true,
        }
    }
}

/// Plan a `bigupd` for in-place execution (§9).
///
/// Flow edges (reads of the result's new values, as in Gauss–Seidel)
/// are hard constraints. Anti edges are scheduled exactly like them;
/// when that fails the planner breaks cycles by node splitting — carry
/// buffers first, then precopies — and falls back to a whole-array
/// copy only when a violated read is conditional (precopying it could
/// evaluate a guarded-away subscript).
///
/// # Errors
/// Returns the scheduler's [`ThunkReason`] when the *flow* edges alone
/// are unschedulable — no amount of copying fixes a true-dependence
/// cycle.
pub fn plan_update(comp: &Comp, analysis: &UpdateAnalysis) -> Result<UpdatePlan, ThunkReason> {
    plan_update_with(comp, analysis, &SplitOptions::default())
}

/// [`plan_update`] with explicit node-splitting knobs.
pub fn plan_update_with(
    comp: &Comp,
    analysis: &UpdateAnalysis,
    split_opts: &SplitOptions,
) -> Result<UpdatePlan, ThunkReason> {
    if analysis.subs_read_result {
        // Subscripts reading the new array are outside the dependence
        // model: reject rather than miscompile.
        return Err(ThunkReason::SelfDependentInstance {
            clause: analysis.refs.first().map(|r| r.id()).unwrap_or(ClauseId(0)),
        });
    }
    let flow: Vec<DepEdge> = analysis.flow.edges.clone();
    if analysis.subs_read_base {
        // Subscript reads of the old array must see the pristine copy.
        return finish_with_copy(comp, analysis, &flow);
    }
    let anti: Vec<DepEdge> = analysis
        .anti
        .edges
        .iter()
        .filter(|e| !trivially_satisfied(e))
        .cloned()
        .collect();
    let conditional_read = |clause: ClauseId, read: usize| {
        analysis
            .refs
            .iter()
            .find(|r| r.id() == clause)
            .and_then(|r| r.reads.get(read))
            .map(|r| r.conditional)
            .unwrap_or(true)
    };
    let mut edges: Vec<DepEdge> = flow.iter().cloned().chain(anti.iter().cloned()).collect();

    // Edge groups removed from consideration, pending a split action.
    let mut pending: Vec<(ClauseId, usize)> = Vec::new();
    let mut removed: Vec<DepEdge> = Vec::new();

    let plan = loop {
        match schedule(comp, &edges) {
            ScheduleOutcome::Thunkless(plan) => break Some(plan),
            ScheduleOutcome::NeedsThunks(reason) => {
                let clauses: BTreeSet<ClauseId> = match &reason {
                    ThunkReason::MixedDirectionCycle { clauses }
                    | ThunkReason::LoopIndependentCycle { clauses } => {
                        clauses.iter().copied().collect()
                    }
                    ThunkReason::SelfDependentInstance { clause } => {
                        [*clause].into_iter().collect()
                    }
                };
                // Only anti edges (src is a read of the base) can be
                // split. Pick a victim inside the blamed cycle: prefer
                // carry-buffer candidates (cheapest temporaries), then
                // unconditional reads (precopyable).
                let is_anti = |e: &DepEdge| e.kind == DepKind::Anti && e.src_read.is_some();
                let unguarded = |c: ClauseId| {
                    analysis
                        .refs
                        .iter()
                        .find(|r| r.id() == c)
                        .map(|r| !r.guarded())
                        .unwrap_or(false)
                };
                let victim = edges
                    .iter()
                    .position(|e| {
                        split_opts.allow_carry
                            && clauses.contains(&e.src)
                            && clauses.contains(&e.dst)
                            && is_anti(e)
                            && unguarded(e.src)
                            && carry_candidate(e).is_some()
                    })
                    .or_else(|| {
                        if !split_opts.allow_precopy && !split_opts.allow_carry {
                            return None;
                        }
                        edges.iter().position(|e| {
                            clauses.contains(&e.src) && clauses.contains(&e.dst) && is_anti(e)
                        })
                    });
                match victim {
                    Some(i) => {
                        let key = (
                            edges[i].src,
                            edges[i].src_read.expect("anti edges originate at reads"),
                        );
                        if !pending.contains(&key) {
                            pending.push(key);
                        }
                        // Redirecting the read kills every anti edge it
                        // originates.
                        let mut kept = Vec::with_capacity(edges.len());
                        for e in edges.drain(..) {
                            if e.kind == DepKind::Anti
                                && e.src == key.0
                                && e.src_read == Some(key.1)
                            {
                                removed.push(e);
                            } else {
                                kept.push(e);
                            }
                        }
                        edges = kept;
                    }
                    None => break None, // a flow-only cycle remains
                }
            }
        }
    };

    match plan {
        Some(mut plan) => {
            let mut actions = Vec::new();
            for (clause, read_index) in pending {
                // Keep only the temporaries the final directions need.
                let group: Vec<&DepEdge> = removed
                    .iter()
                    .filter(|e| e.src == clause && e.src_read == Some(read_index))
                    .collect();
                let violated: Vec<&&DepEdge> = group
                    .iter()
                    .filter(|e| violated_by_plan(e, &plan))
                    .collect();
                if violated.is_empty() {
                    continue;
                }
                // All violated edges of the group carry-bufferable at a
                // single level? Then one buffer serves the read.
                let carries: Option<Vec<(usize, i64)>> =
                    violated.iter().map(|e| carry_candidate(e)).collect();
                let clause_unguarded = analysis
                    .refs
                    .iter()
                    .find(|r| r.id() == clause)
                    .map(|r| !r.guarded())
                    .unwrap_or(false);
                match carries {
                    Some(cs)
                        if split_opts.allow_carry
                            && clause_unguarded
                            && !cs.is_empty()
                            && cs.windows(2).all(|w| w[0] == w[1]) =>
                    {
                        let (level, lag) = cs[0];
                        actions.push(SplitAction::CarryBuffer {
                            clause,
                            read_index,
                            level,
                            lag,
                        });
                    }

                    _ if split_opts.allow_precopy && !conditional_read(clause, read_index) => {
                        actions.push(SplitAction::Precopy { clause, read_index })
                    }
                    // Precopying a conditional read could evaluate a
                    // subscript its guard would have skipped: copy the
                    // whole old array instead.
                    _ => {
                        return finish_with_copy(comp, analysis, &flow);
                    }
                }
            }
            // The split scheduler converged on a *relaxed* edge set
            // (victim anti edges removed pending redirection), so the
            // plan's §10 verdicts are too optimistic for parallel
            // execution. Recompute them against the full flow + anti
            // set. Two further vetoes: carry-buffer ring temporaries
            // are shared across iterations of every enclosing loop
            // (concurrent chunks would race on the ring), and a
            // possible write collision is an output dependence the
            // direction vectors above never see.
            let has_carry = actions
                .iter()
                .any(|a| matches!(a, SplitAction::CarryBuffer { .. }));
            if has_carry || !analysis.collisions.checks_elidable() {
                plan.par_loops = Vec::new();
                plan.red_loops = Vec::new();
            } else {
                let full: Vec<DepEdge> = analysis
                    .flow
                    .edges
                    .iter()
                    .chain(analysis.anti.edges.iter())
                    .cloned()
                    .collect();
                plan.par_loops = crate::scheduler::par_loops(comp, &full);
                plan.red_loops = crate::scheduler::reduction_loops(comp, &full);
            }
            let strategy = if actions.is_empty() {
                UpdateStrategy::InPlace
            } else {
                UpdateStrategy::Split(actions)
            };
            Ok(UpdatePlan { plan, strategy })
        }
        None => finish_with_copy(comp, analysis, &flow),
    }
}

/// Whole-array-copy fallback: every anti edge is satisfied by the copy,
/// so only the flow edges constrain the schedule — and the §10 parallel
/// verdicts likewise hold against flow alone (reads go to the pristine
/// copy), provided writes cannot collide.
fn finish_with_copy(
    comp: &Comp,
    analysis: &UpdateAnalysis,
    flow: &[DepEdge],
) -> Result<UpdatePlan, ThunkReason> {
    match schedule(comp, flow) {
        ScheduleOutcome::Thunkless(mut plan) => {
            if !analysis.collisions.checks_elidable() {
                plan.par_loops = Vec::new();
                plan.red_loops = Vec::new();
            }
            Ok(UpdatePlan {
                plan,
                strategy: UpdateStrategy::CopyWhole,
            })
        }
        ScheduleOutcome::NeedsThunks(reason) => Err(reason),
    }
}

/// The loop ids below `level` in a clause's nest (needed by codegen to
/// size carry buffers); re-exported here for convenience.
pub fn inner_loops_below(nest: &[LoopId], level: usize) -> &[LoopId] {
    &nest[level + 1..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_analysis::analyze::analyze_bigupd;
    use hac_analysis::search::TestPolicy;
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn planned(src: &str, env: &ConstEnv) -> UpdatePlan {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let u = analyze_bigupd("a", "b", &c, env, &TestPolicy::default()).unwrap();
        plan_update(&c, &u).expect("update schedulable")
    }

    #[test]
    fn row_scale_in_place() {
        // §9: "scaling a matrix row ... no copying".
        let env = ConstEnv::from_pairs([("n", 8), ("k", 3)]);
        let p = planned("[ (k,j) := 2 * a!(k,j) | j <- [1..n] ]", &env);
        assert_eq!(p.strategy, UpdateStrategy::InPlace);
    }

    #[test]
    fn saxpy_in_place() {
        // y := y + alpha x expressed over rows k (y) and m (x) of a.
        let env = ConstEnv::from_pairs([("n", 8), ("k", 2), ("m", 5)]);
        let p = planned("[ (k,j) := a!(k,j) + 3 * a!(m,j) | j <- [1..n] ]", &env);
        assert_eq!(p.strategy, UpdateStrategy::InPlace);
    }

    #[test]
    fn sor_wavefront_in_place() {
        // §9 Gauss–Seidel/SOR: the new value mixes already-updated
        // neighbors (b!, flow edges δ(<,=), δ(=,<)) with old neighbors
        // (a!, anti edges δ̄(<,=), δ̄(=,<)). All four self edges agree
        // with forward/forward loops: in place, no thunks, no copies.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned(
            "[ (i,j) := b!(i-1,j) + b!(i,j-1) + a!(i+1,j) + a!(i,j+1) \
             | i <- [2..n-1], j <- [2..n-1] ]",
            &env,
        );
        assert_eq!(p.strategy, UpdateStrategy::InPlace, "{}", p.plan.render());
    }

    #[test]
    fn row_swap_needs_one_precopy() {
        // §9 LINPACK row swap: anti cycle between the clauses; one
        // precopied row breaks it.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned(
            "[ (1,j) := a!(2,j) | j <- [1..n] ] ++ [ (2,j) := a!(1,j) | j <- [1..n] ]",
            &env,
        );
        match &p.strategy {
            UpdateStrategy::Split(actions) => {
                assert_eq!(actions.len(), 1);
                assert!(matches!(actions[0], SplitAction::Precopy { .. }));
            }
            other => panic!("expected one precopy, got {other:?}"),
        }
    }

    #[test]
    fn jacobi_needs_carry_buffers() {
        // §9 Jacobi: conflicting (=,<)/(=,>) and (<,=)/(>,=) self anti
        // cycles; two carry buffers (scalar + row) break them.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned(
            "[ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
             | i <- [2..n-1], j <- [2..n-1] ]",
            &env,
        );
        match &p.strategy {
            UpdateStrategy::Split(actions) => {
                assert_eq!(actions.len(), 2, "{actions:?}");
                let mut levels: Vec<usize> = actions
                    .iter()
                    .map(|a| match a {
                        SplitAction::CarryBuffer { level, lag, .. } => {
                            assert_eq!(*lag, 1);
                            *level
                        }
                        other => panic!("expected carry buffer, got {other:?}"),
                    })
                    .collect();
                levels.sort();
                assert_eq!(levels, vec![0, 1], "one row buffer, one scalar carry");
            }
            other => panic!("expected two carry buffers, got {other:?}"),
        }
    }

    #[test]
    fn nonlinear_read_precopies() {
        // An indirect read defeats the dependence tests, but the read
        // region can still be materialized up front — a precopy, not a
        // whole-array copy.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned("[ i := a!(p!i) | i <- [1..n] ]", &env);
        match &p.strategy {
            UpdateStrategy::Split(actions) => {
                assert!(matches!(actions[0], SplitAction::Precopy { .. }));
            }
            other => panic!("expected precopy, got {other:?}"),
        }
    }

    #[test]
    fn conditional_violated_read_copies_whole() {
        // The violated read sits under `if`: precopying it could
        // evaluate a!(p!i) where the guard would have skipped it.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned("[ i := if i == 1 then 0 else a!(p!i) | i <- [1..n] ]", &env);
        assert_eq!(p.strategy, UpdateStrategy::CopyWhole);
    }

    #[test]
    fn flow_cycle_is_an_error() {
        // b!(i) needs b!(i+1) and b!(i-1): a mixed-direction flow
        // cycle; no copy strategy can help.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let mut c = parse_comp("[ i := b!(i+1) + b!(i-1) | i <- [2..n-1] ]").unwrap();
        number_clauses(&mut c);
        let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
        assert!(plan_update(&c, &u).is_err());
    }

    #[test]
    fn backward_satisfiable_uses_direction_not_split() {
        // a!(i) := f(a!(i+1)): anti edge read (i+1) before write (i+1)…
        // distance d = y − x = +1 → satisfied by a forward loop? Read
        // at x reads element x+1, written at iteration x+1: forward
        // order reads first — in place with NO split, loop forward.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let p = planned("[ i := a!(i+1) * 2 | i <- [1..n-1] ]", &env);
        assert_eq!(p.strategy, UpdateStrategy::InPlace, "{}", p.plan.render());
    }
}
