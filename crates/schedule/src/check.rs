//! Executable legality oracle for schedules.
//!
//! "The order is safe for thunkless compilation if for every edge in
//! the dependence graph, the source instance is always computed before
//! the sink instance" (§5). This module simulates a [`Plan`]'s
//! execution order instance-by-instance and verifies that property for
//! every dependence edge — the test suite's ground truth for the
//! scheduler. Guards are ignored (all instances assumed to execute),
//! which only makes the check stricter.

use std::collections::BTreeMap;
use std::fmt;

use hac_analysis::depgraph::DepEdge;
use hac_analysis::direction::Dir;
use hac_lang::ast::{ClauseId, Comp, LoopId, Range};
use hac_lang::env::ConstEnv;
use hac_lang::normalize::{normalize_loop, NormalizeError};
use hac_lang::number::{clause_contexts, LoopFrame};

use crate::plan::{Dirn, Plan, Step};

/// Execution timestamps per clause: `(loop bindings, time)` per
/// instance.
type InstanceTimes = BTreeMap<ClauseId, Vec<(Vec<(LoopId, i64)>, u64)>>;

/// A legality violation: some sink instance ran before its source.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalityError {
    pub src: ClauseId,
    pub dst: ClauseId,
    pub dv: String,
    /// Shared-loop positions (normalized) of the offending pair.
    pub src_pos: Vec<i64>,
    pub snk_pos: Vec<i64>,
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependence {} → {} {} violated: source instance {:?} runs after sink {:?}",
            self.src, self.dst, self.dv, self.src_pos, self.snk_pos
        )
    }
}

impl std::error::Error for LegalityError {}

/// Check every edge against the plan's execution order.
///
/// # Errors
/// Returns the first violated edge instance, or panics on plans that
/// reference unknown loops (programmer error). Normalization failures
/// (unbound parameters) surface as `Err` via `expect` in tests — call
/// with the same `env` used for analysis.
pub fn check_plan(
    plan: &Plan,
    comp: &Comp,
    edges: &[DepEdge],
    env: &ConstEnv,
) -> Result<(), LegalityError> {
    // 1. Record a timestamp for every clause instance.
    let mut times: InstanceTimes = BTreeMap::new();
    let mut clock = 0u64;
    let mut binding: Vec<(LoopId, i64)> = Vec::new();
    for step in &plan.steps {
        simulate(step, env, &mut binding, &mut clock, &mut times)
            .expect("plan loops must normalize under env");
    }

    // 2. Shared-loop prefixes per clause pair come from the contexts.
    let ctxs = clause_contexts(comp);
    let ctx_of = |id: ClauseId| {
        ctxs.iter()
            .find(|c| c.clause.id == id)
            .unwrap_or_else(|| panic!("clause {id} not in comprehension"))
    };

    for e in edges {
        let sc = ctx_of(e.src);
        let dc = ctx_of(e.dst);
        let shared: Vec<LoopId> = sc
            .loops()
            .iter()
            .zip(dc.loops().iter())
            .take_while(|(a, b)| a.id == b.id)
            .map(|(a, _)| a.id)
            .collect();
        assert_eq!(shared.len(), e.dv.len(), "edge arity mismatch");

        let project = |inst: &[(LoopId, i64)]| -> Vec<i64> {
            shared
                .iter()
                .map(|l| {
                    inst.iter()
                        .find(|(id, _)| id == l)
                        .map(|(_, v)| *v)
                        .expect("instance must bind its shared loops")
                })
                .collect()
        };

        // Group: max source time per shared prefix, min sink time.
        let empty = Vec::new();
        let src_times = times.get(&e.src).unwrap_or(&empty);
        let snk_times = times.get(&e.dst).unwrap_or(&empty);
        let mut src_max: BTreeMap<Vec<i64>, u64> = BTreeMap::new();
        for (inst, t) in src_times {
            let k = project(inst);
            let entry = src_max.entry(k).or_insert(0);
            *entry = (*entry).max(*t);
        }
        let mut snk_min: BTreeMap<Vec<i64>, u64> = BTreeMap::new();
        for (inst, t) in snk_times {
            let k = project(inst);
            let entry = snk_min.entry(k).or_insert(u64::MAX);
            *entry = (*entry).min(*t);
        }

        for (x, &tx) in &src_max {
            for (y, &ty) in &snk_min {
                let matches = e.dv.0.iter().enumerate().all(|(k, d)| match d {
                    Dir::Lt => x[k] < y[k],
                    Dir::Eq => x[k] == y[k],
                    Dir::Gt => x[k] > y[k],
                    Dir::Any => true,
                });
                // The vacuous self "pair" (same clause, identical
                // instance under an all-= vector) is the ⊥ case the
                // scheduler rejects before planning; for distinct
                // clauses an all-= pair is a real constraint.
                if matches && !(e.src == e.dst && x == y) && tx >= ty {
                    return Err(LegalityError {
                        src: e.src,
                        dst: e.dst,
                        dv: e.dv.to_string(),
                        src_pos: x.clone(),
                        snk_pos: y.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn simulate(
    step: &Step,
    env: &ConstEnv,
    binding: &mut Vec<(LoopId, i64)>,
    clock: &mut u64,
    times: &mut InstanceTimes,
) -> Result<(), NormalizeError> {
    match step {
        Step::Clause(id) => {
            *clock += 1;
            times
                .entry(*id)
                .or_default()
                .push((binding.clone(), *clock));
        }
        Step::Guard { body, .. } | Step::Let { body, .. } => {
            for s in body {
                simulate(s, env, binding, clock, times)?;
            }
        }
        Step::Loop {
            id,
            var,
            range,
            dirn,
            body,
        } => {
            let frame = LoopFrame {
                id: *id,
                var: var.clone(),
                range: Range {
                    lo: range.lo.clone(),
                    hi: range.hi.clone(),
                    step: range.step,
                },
            };
            let nl = normalize_loop(&frame, env)?;
            let positions: Vec<i64> = match dirn {
                Dirn::Forward => (1..=nl.size).collect(),
                Dirn::Backward => (1..=nl.size).rev().collect(),
            };
            for x in positions {
                binding.push((*id, x));
                for s in body {
                    simulate(s, env, binding, clock, times)?;
                }
                binding.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_analysis::depgraph::{flow_dependences, DepKind};
    use hac_analysis::direction::DirVec;
    use hac_analysis::refs::collect_refs;
    use hac_analysis::search::{Confidence, TestPolicy};
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    use crate::plan::ScheduleOutcome;
    use crate::scheduler::schedule;

    fn full_check(src: &str, env: &ConstEnv) {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        match schedule(&c, &flow.edges) {
            ScheduleOutcome::Thunkless(plan) => {
                check_plan(&plan, &c, &flow.edges, env)
                    .unwrap_or_else(|e| panic!("illegal plan for `{src}`: {e}\n{}", plan.render()));
            }
            ScheduleOutcome::NeedsThunks(r) => panic!("unexpected thunk fallback: {r}"),
        }
    }

    #[test]
    fn checks_paper_kernels() {
        let env = ConstEnv::from_pairs([("n", 6), ("m", 4)]);
        for src in [
            // §5 example 1
            "[* [ 3*i := 1 ] ++ [ 3*i-1 := a!(3*(i-1)) ] ++ [ 3*i-2 := a!(3*i) ] \
             | i <- [1..6] *]",
            // wavefront
            "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
             [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]",
            // backward recurrence
            "[ n := 0 ] ++ [ i := a!(i+1) + 1 | i <- [1..n-1] ]",
            // backward inner loop
            "[* [ (i,j) := a!(i,j+1) ] | i <- [1..m], j <- [1..n-1] *] ++ \
             [ (i,n) := 1 | i <- [1..m] ]",
            // first-order recurrence
            "[ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]",
        ] {
            full_check(src, &env);
        }
    }

    #[test]
    fn detects_illegal_plan() {
        // Schedule the forward recurrence with a *backward* loop: the
        // checker must reject it.
        let env = ConstEnv::from_pairs([("n", 6)]);
        let mut c = parse_comp("[ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]").unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", &env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        let plan = match schedule(&c, &flow.edges) {
            ScheduleOutcome::Thunkless(p) => p,
            other => panic!("{other:?}"),
        };
        // Flip every loop direction.
        fn flip(steps: &mut [Step]) {
            for s in steps {
                match s {
                    Step::Loop { dirn, body, .. } => {
                        *dirn = dirn.reverse();
                        flip(body);
                    }
                    Step::Guard { body, .. } | Step::Let { body, .. } => flip(body),
                    Step::Clause(_) => {}
                }
            }
        }
        let mut bad = plan.clone();
        flip(&mut bad.steps);
        assert!(check_plan(&plan, &c, &flow.edges, &env).is_ok());
        let err = check_plan(&bad, &c, &flow.edges, &env).unwrap_err();
        assert_eq!(err.dv, "(<)");
    }

    #[test]
    fn detects_wrong_clause_order() {
        // Two clauses with a same-loop (=) dependence scheduled in the
        // wrong body order.
        let env = ConstEnv::new();
        let mut c = parse_comp("[* [ 2*i := 1 ] ++ [ 2*i-1 := a!(2*i) ] | i <- [1..5] *]").unwrap();
        number_clauses(&mut c);
        let edges = vec![DepEdge {
            src: ClauseId(0),
            dst: ClauseId(1),
            kind: DepKind::Flow,
            array: "a".into(),
            dv: DirVec(vec![Dir::Eq]),
            confidence: Confidence::Possible,
            distance: Some(vec![0]),
            src_read: None,
            dst_read: None,
        }];
        let good = match schedule(&c, &edges) {
            ScheduleOutcome::Thunkless(p) => p,
            other => panic!("{other:?}"),
        };
        assert!(check_plan(&good, &c, &edges, &env).is_ok());
        // Swap the body order by hand.
        let mut bad = good.clone();
        if let Step::Loop { body, .. } = &mut bad.steps[0] {
            body.reverse();
        }
        assert!(check_plan(&bad, &c, &edges, &env).is_err());
    }
}
