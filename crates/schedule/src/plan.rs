//! The schedule IR: an explicitly ordered, direction-annotated loop
//! program produced by the static scheduler (§8).
//!
//! A [`Plan`] is what "thunkless code generation" means operationally:
//! the comprehension's generators become loops with *chosen* directions,
//! possibly split into multiple passes, and the s/v clauses appear in an
//! order that computes every dependence source before its sink.

use std::fmt;

use hac_lang::ast::{ClauseId, Expr, LoopId, Range};

/// A loop traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dirn {
    /// Low to high index (the generator's own orientation).
    Forward,
    /// High to low index.
    Backward,
}

impl Dirn {
    /// The opposite direction.
    pub fn reverse(self) -> Dirn {
        match self {
            Dirn::Forward => Dirn::Backward,
            Dirn::Backward => Dirn::Forward,
        }
    }
}

impl fmt::Display for Dirn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dirn::Forward => write!(f, "forward"),
            Dirn::Backward => write!(f, "backward"),
        }
    }
}

/// One step of a scheduled plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// A pass over a generator in a chosen direction. The same
    /// [`LoopId`] may appear in several consecutive `Loop` steps when
    /// the scheduler split the loop into passes (§8.1.3).
    Loop {
        id: LoopId,
        var: String,
        range: Range,
        dirn: Dirn,
        body: Vec<Step>,
    },
    /// Execute one s/v clause instance.
    Clause(ClauseId),
    /// A guard scoped over sub-steps.
    Guard { cond: Expr, body: Vec<Step> },
    /// `let` bindings scoped over sub-steps.
    Let {
        binds: Vec<(String, Expr)>,
        body: Vec<Step>,
    },
}

impl Step {
    /// All clause ids under this step, in schedule order.
    pub fn clauses(&self) -> Vec<ClauseId> {
        let mut out = Vec::new();
        self.collect_clauses(&mut out);
        out
    }

    fn collect_clauses(&self, out: &mut Vec<ClauseId>) {
        match self {
            Step::Clause(id) => out.push(*id),
            Step::Loop { body, .. } | Step::Guard { body, .. } | Step::Let { body, .. } => {
                for s in body {
                    s.collect_clauses(out);
                }
            }
        }
    }

    /// Number of `Loop` steps in this subtree (pass-count metric).
    pub fn loop_count(&self) -> usize {
        match self {
            Step::Clause(_) => 0,
            Step::Loop { body, .. } => 1 + body.iter().map(Step::loop_count).sum::<usize>(),
            Step::Guard { body, .. } | Step::Let { body, .. } => {
                body.iter().map(Step::loop_count).sum()
            }
        }
    }
}

/// A complete thunkless schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    pub steps: Vec<Step>,
    /// Loops proven free of carried dependences (§10): every id listed
    /// here may run its iterations in any order — or concurrently. The
    /// verdict is computed against the edge set the plan was scheduled
    /// under (flow for monolithic arrays; the *full* flow + anti set
    /// for in-place updates, see `split::plan_update`).
    pub par_loops: Vec<LoopId>,
    /// Loops whose only carried dependence is a reassociable
    /// accumulator recurrence (`acc = acc + e`, `min`, `max`): a fused
    /// backend may stream the fold left-to-right without per-iteration
    /// dispatch, but must preserve the scalar order of operations.
    /// Computed against the same edge set as `par_loops`.
    pub red_loops: Vec<LoopId>,
}

impl Plan {
    /// All clause ids in schedule order (with repetition if a clause
    /// appears in several passes — it never should).
    pub fn clauses(&self) -> Vec<ClauseId> {
        let mut out = Vec::new();
        for s in &self.steps {
            s.collect_clauses(&mut out);
        }
        out
    }

    /// Total number of loop passes.
    pub fn loop_count(&self) -> usize {
        self.steps.iter().map(Step::loop_count).sum()
    }

    /// Render an indented text form (used in reports and tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            render_step(s, 0, &mut out);
        }
        out
    }
}

fn render_step(s: &Step, indent: usize, out: &mut String) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(indent);
    match s {
        Step::Loop {
            id,
            var,
            dirn,
            body,
            ..
        } => {
            let _ = writeln!(out, "{pad}for {var} ({id}) {dirn}:");
            for b in body {
                render_step(b, indent + 1, out);
            }
        }
        Step::Clause(id) => {
            let _ = writeln!(out, "{pad}{id}");
        }
        Step::Guard { cond, body } => {
            let _ = writeln!(out, "{pad}if {}:", hac_lang::pretty::expr_str(cond));
            for b in body {
                render_step(b, indent + 1, out);
            }
        }
        Step::Let { binds, body } => {
            let names: Vec<&str> = binds.iter().map(|(n, _)| n.as_str()).collect();
            let _ = writeln!(out, "{pad}let {}:", names.join(", "));
            for b in body {
                render_step(b, indent + 1, out);
            }
        }
    }
}

/// Why thunkless compilation is impossible (§8.1.2, §8.1.4): compile
/// with thunks instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThunkReason {
    /// An SCC's dependence cycle contains both `(<)` and `(>)` carried
    /// edges at the same loop level — no direction satisfies it.
    MixedDirectionCycle { clauses: Vec<ClauseId> },
    /// A cycle of loop-independent (`=`/`()`-labeled) edges: within one
    /// instance the clauses need each other.
    LoopIndependentCycle { clauses: Vec<ClauseId> },
    /// A clause instance depends on itself (e.g. `a!i` inside the
    /// clause defining `i`): the value is ⊥.
    SelfDependentInstance { clause: ClauseId },
}

impl fmt::Display for ThunkReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = |cs: &[ClauseId]| {
            cs.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        match self {
            ThunkReason::MixedDirectionCycle { clauses } => write!(
                f,
                "cycle through {{{}}} carries both (<) and (>) edges; no loop direction \
                 is safe",
                list(clauses)
            ),
            ThunkReason::LoopIndependentCycle { clauses } => write!(
                f,
                "loop-independent dependence cycle through {{{}}}",
                list(clauses)
            ),
            ThunkReason::SelfDependentInstance { clause } => {
                write!(f, "clause {clause} depends on its own instance (⊥)")
            }
        }
    }
}

/// Outcome of scheduling an array expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleOutcome {
    /// A safe static schedule exists: compile without thunks.
    Thunkless(Plan),
    /// No safe schedule: fall back to thunked evaluation.
    NeedsThunks(ThunkReason),
}

impl ScheduleOutcome {
    /// The plan, if thunkless.
    pub fn plan(&self) -> Option<&Plan> {
        match self {
            ScheduleOutcome::Thunkless(p) => Some(p),
            ScheduleOutcome::NeedsThunks(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::ast::Expr;

    #[test]
    fn plan_collects_clauses_in_order() {
        let plan = Plan {
            steps: vec![
                Step::Loop {
                    id: LoopId(0),
                    var: "i".into(),
                    range: Range::new(Expr::int(1), Expr::int(10)),
                    dirn: Dirn::Forward,
                    body: vec![Step::Clause(ClauseId(1)), Step::Clause(ClauseId(0))],
                },
                Step::Clause(ClauseId(2)),
            ],
            par_loops: Vec::new(),
            red_loops: Vec::new(),
        };
        assert_eq!(plan.clauses(), vec![ClauseId(1), ClauseId(0), ClauseId(2)]);
        assert_eq!(plan.loop_count(), 1);
    }

    #[test]
    fn render_is_readable() {
        let plan = Plan {
            steps: vec![Step::Loop {
                id: LoopId(0),
                var: "i".into(),
                range: Range::new(Expr::int(1), Expr::int(3)),
                dirn: Dirn::Backward,
                body: vec![Step::Guard {
                    cond: Expr::bin(hac_lang::ast::BinOp::Gt, Expr::var("i"), Expr::int(1)),
                    body: vec![Step::Clause(ClauseId(0))],
                }],
            }],
            par_loops: Vec::new(),
            red_loops: Vec::new(),
        };
        let r = plan.render();
        assert!(r.contains("for i (L0) backward:"));
        assert!(r.contains("if i > 1:"));
        assert!(r.contains("c0"));
    }

    #[test]
    fn dirn_reverse_roundtrips() {
        assert_eq!(Dirn::Forward.reverse(), Dirn::Backward);
        assert_eq!(Dirn::Backward.reverse().reverse(), Dirn::Backward);
    }

    #[test]
    fn thunk_reasons_display() {
        let r = ThunkReason::MixedDirectionCycle {
            clauses: vec![ClauseId(0), ClauseId(1)],
        };
        assert!(r.to_string().contains("c0, c1"));
        let r2 = ThunkReason::SelfDependentInstance {
            clause: ClauseId(3),
        };
        assert!(r2.to_string().contains("c3"));
    }
}
