//! The static scheduler (§8): loop directions, clause ordering,
//! multi-pass loop splitting, and the thunk fallback decision.
//!
//! The comprehension tree is scheduled level by level. At a generator,
//! its immediate children (clauses and inner loops, each carrying its
//! guard/`let` wrappers) become *entities* (§8.2: "We treat the outer
//! loop as a single-level loop containing a set of entities with no
//! internal structure"). Dependence edges whose direction vector starts
//! with `<` or `>` are loop-carried here and constrain the loop
//! direction; edges starting with `=` either order entities within one
//! instance (endpoints in different children) or are stripped and
//! passed down (endpoints inside the same inner loop, §8.2.3).
//!
//! Per §8.1, the entity graph is condensed into SCCs:
//! * an SCC whose cycles carry both `(<)` and `(>)` edges is
//!   unschedulable → thunks;
//! * an SCC with a cycle of only `(=)` edges is unschedulable → thunks
//!   (§8.1.4);
//! * otherwise the condensation DAG is emitted as a sequence of loop
//!   *passes* using the 'ready'/'not-ready' marking (§8.1.3), each pass
//!   running in a direction compatible with every carried edge it
//!   contains.

use std::collections::BTreeSet;

use hac_analysis::depgraph::DepEdge;
use hac_analysis::direction::{Dir, DirVec};
use hac_graph::{mark_not_ready, tarjan_scc, topo_sort, DiGraph, NodeId, TopoResult};
use hac_lang::ast::{ClauseId, Comp, Expr, LoopId, Range, SvClause};

use crate::plan::{Dirn, Plan, ScheduleOutcome, Step, ThunkReason};

/// A guard or `let` wrapper between a level and one of its entities.
#[derive(Debug, Clone, PartialEq)]
enum Wrapper {
    Guard(Expr),
    Let(Vec<(String, Expr)>),
}

/// An entity at one scheduling level.
#[derive(Debug, Clone)]
struct Entity<'a> {
    wrappers: Vec<Wrapper>,
    node: EntityNode<'a>,
    /// All clause ids inside this entity.
    clause_set: BTreeSet<ClauseId>,
}

#[derive(Debug, Clone)]
enum EntityNode<'a> {
    Clause(&'a SvClause),
    Gen {
        id: LoopId,
        var: &'a str,
        range: &'a Range,
        body: &'a Comp,
    },
}

/// An edge whose direction vector is relative to the current level.
#[derive(Debug, Clone)]
struct LevelEdge {
    src: ClauseId,
    dst: ClauseId,
    dv: DirVec,
}

/// Collect the entities of a comprehension level, flattening appends
/// and accumulating guard/`let` wrappers.
fn entities(comp: &Comp) -> Vec<Entity<'_>> {
    let mut out = Vec::new();
    collect_entities(comp, &mut Vec::new(), &mut out);
    out
}

fn collect_entities<'a>(comp: &'a Comp, wrappers: &mut Vec<Wrapper>, out: &mut Vec<Entity<'a>>) {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                collect_entities(c, wrappers, out);
            }
        }
        Comp::Guard { cond, body } => {
            wrappers.push(Wrapper::Guard(cond.clone()));
            collect_entities(body, wrappers, out);
            wrappers.pop();
        }
        Comp::Let { binds, body } => {
            wrappers.push(Wrapper::Let(binds.clone()));
            collect_entities(body, wrappers, out);
            wrappers.pop();
        }
        Comp::Gen {
            id,
            var,
            range,
            body,
        } => {
            let mut clause_set = BTreeSet::new();
            body.walk(&mut |c| {
                if let Comp::Clause(sv) = c {
                    clause_set.insert(sv.id);
                }
            });
            out.push(Entity {
                wrappers: wrappers.clone(),
                node: EntityNode::Gen {
                    id: *id,
                    var,
                    range,
                    body,
                },
                clause_set,
            });
        }
        Comp::Clause(sv) => {
            let mut clause_set = BTreeSet::new();
            clause_set.insert(sv.id);
            out.push(Entity {
                wrappers: wrappers.clone(),
                node: EntityNode::Clause(sv),
                clause_set,
            });
        }
    }
}

/// Expand `*` components into the three concrete directions, so the
/// scheduler only ever sees `<`, `=`, `>` (a `*` must be satisfied as
/// all three simultaneously).
fn expand_any(edges: &[DepEdge]) -> Vec<LevelEdge> {
    let mut out = Vec::new();
    for e in edges {
        for dv in e.dv.concretizations() {
            out.push(LevelEdge {
                src: e.src,
                dst: e.dst,
                dv,
            });
        }
    }
    out
}

/// Scheduler knobs (ablation studies; defaults reproduce the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedOptions {
    /// Allow splitting a loop into multiple passes (§8.1.3). With this
    /// off, any level mixing `(<)` and `(>)` edges — even acyclically —
    /// falls back to thunks.
    pub allow_multipass: bool,
}

impl Default for SchedOptions {
    fn default() -> SchedOptions {
        SchedOptions {
            allow_multipass: true,
        }
    }
}

/// Schedule a whole comprehension against its dependence edges.
///
/// The edges are typically the flow dependences of a recursively
/// defined monolithic array (§8); for `bigupd` scheduling, pass anti
/// dependences — "antidependence edges can be treated exactly like true
/// dependence edges for the sake of static scheduling" (§9).
pub fn schedule(comp: &Comp, edges: &[DepEdge]) -> ScheduleOutcome {
    schedule_with(comp, edges, &SchedOptions::default())
}

/// [`schedule`] with explicit knobs.
pub fn schedule_with(comp: &Comp, edges: &[DepEdge], opts: &SchedOptions) -> ScheduleOutcome {
    let level = expand_any(edges);
    match schedule_top(comp, &level, opts) {
        Ok(steps) => ScheduleOutcome::Thunkless(Plan {
            steps,
            par_loops: par_loops(comp, edges),
            red_loops: reduction_loops(comp, edges),
        }),
        Err(reason) => ScheduleOutcome::NeedsThunks(reason),
    }
}

/// §10 verdicts for the edge set the plan was scheduled under: the ids
/// of every generator that carries no dependence. Iterations of such a
/// loop are mutually independent, so any pass over it may be reordered
/// or run concurrently.
pub fn par_loops(comp: &Comp, edges: &[DepEdge]) -> Vec<LoopId> {
    hac_analysis::parallel::loop_parallelism(comp, edges)
        .into_iter()
        .filter(|l| l.parallelizable())
        .map(|l| l.id)
        .collect()
}

/// Reduction verdicts for the same edge set: ids of every generator
/// whose carried dependences are all reassociable accumulator
/// recurrences (see [`hac_analysis::parallel::LoopParallelism::reducible`]).
pub fn reduction_loops(comp: &Comp, edges: &[DepEdge]) -> Vec<LoopId> {
    hac_analysis::parallel::loop_parallelism(comp, edges)
        .into_iter()
        .filter(|l| l.reducible())
        .map(|l| l.id)
        .collect()
}

/// Schedule the root level: no surrounding loop, so every cross-entity
/// edge is a pure ordering constraint (its direction vector is empty).
fn schedule_top(
    comp: &Comp,
    edges: &[LevelEdge],
    opts: &SchedOptions,
) -> Result<Vec<Step>, ThunkReason> {
    let ents = entities(comp);
    schedule_entity_seq(&ents, edges, None, opts)
}

/// Label of an entity-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lbl {
    /// Loop-carried at this level; the payload is the direction the
    /// loop must run to satisfy it.
    Carried(Dirn),
    /// Loop-independent: source entity before sink entity within one
    /// instance.
    Ordering,
}

/// Shared machinery for a level: `gen` is `Some` when the entities sit
/// under a generator at this level (so carried edges exist), `None` at
/// the root.
fn schedule_entity_seq(
    ents: &[Entity<'_>],
    edges: &[LevelEdge],
    gen: Option<(&LoopId, &str, &Range)>,
    opts: &SchedOptions,
) -> Result<Vec<Step>, ThunkReason> {
    // Map clauses to entities.
    let entity_of =
        |c: ClauseId| -> Option<usize> { ents.iter().position(|e| e.clause_set.contains(&c)) };

    let mut g: DiGraph<Lbl> = DiGraph::with_nodes(ents.len());
    // Down-edges per entity (for recursion into inner generators).
    let mut down: Vec<Vec<LevelEdge>> = vec![Vec::new(); ents.len()];

    for e in edges {
        let (Some(se), Some(de)) = (entity_of(e.src), entity_of(e.dst)) else {
            // Edge endpoints outside this subtree: not our concern.
            continue;
        };
        if gen.is_some() {
            // Under a generator the first component refers to it.
            let first =
                e.dv.first()
                    .expect("edge inside a generator must have a component for it");
            match first {
                Dir::Lt => {
                    g.add_edge(NodeId(se), NodeId(de), Lbl::Carried(Dirn::Forward));
                }
                Dir::Gt => {
                    g.add_edge(NodeId(se), NodeId(de), Lbl::Carried(Dirn::Backward));
                }
                Dir::Eq => {
                    if se == de {
                        match &ents[se].node {
                            EntityNode::Gen { .. } => down[se].push(LevelEdge {
                                src: e.src,
                                dst: e.dst,
                                dv: e.dv.strip_first(),
                            }),
                            EntityNode::Clause(_) => {
                                // Same clause, same instance of every
                                // shared loop: the element needs itself.
                                return Err(ThunkReason::SelfDependentInstance { clause: e.src });
                            }
                        }
                    } else {
                        g.add_edge(NodeId(se), NodeId(de), Lbl::Ordering);
                    }
                }
                Dir::Any => unreachable!("expand_any removed `*` components"),
            }
        } else {
            // Root level: no shared loop here.
            debug_assert!(e.dv.is_empty() || se == de);
            if se == de {
                match &ents[se].node {
                    EntityNode::Gen { .. } => down[se].push(e.clone()),
                    EntityNode::Clause(_) => {
                        return Err(ThunkReason::SelfDependentInstance { clause: e.src })
                    }
                }
            } else {
                g.add_edge(NodeId(se), NodeId(de), Lbl::Ordering);
            }
        }
    }

    // Condense into SCCs and classify each (§8.1.2).
    let sccs = tarjan_scc(&g);
    let mut scc_dir: Vec<Option<Dirn>> = vec![None; sccs.len()];
    for (idx, dir_slot) in scc_dir.iter_mut().enumerate() {
        if !sccs.is_cyclic(idx, &g) {
            continue;
        }
        let members: BTreeSet<usize> = sccs.members[idx].iter().map(|n| n.0).collect();
        let mut has_fwd = false;
        let mut has_bwd = false;
        let mut eq_graph: DiGraph<()> = DiGraph::with_nodes(ents.len());
        for (_, e) in g.edges() {
            if members.contains(&e.src.0) && members.contains(&e.dst.0) {
                match e.label {
                    Lbl::Carried(Dirn::Forward) => has_fwd = true,
                    Lbl::Carried(Dirn::Backward) => has_bwd = true,
                    Lbl::Ordering => {
                        eq_graph.add_edge(e.src, e.dst, ());
                    }
                }
            }
        }
        let clause_list = |members: &BTreeSet<usize>| {
            members
                .iter()
                .flat_map(|&m| ents[m].clause_set.iter().copied())
                .collect::<Vec<_>>()
        };
        if has_fwd && has_bwd {
            return Err(ThunkReason::MixedDirectionCycle {
                clauses: clause_list(&members),
            });
        }
        // A cycle made only of (=) edges cannot be ordered within one
        // instance (§8.1.4).
        if topo_sort(&eq_graph).is_cyclic() {
            return Err(ThunkReason::LoopIndependentCycle {
                clauses: clause_list(&members),
            });
        }
        if gen.is_none() && (has_fwd || has_bwd) {
            unreachable!("carried edges cannot appear at the root level");
        }
        *dir_slot = if has_fwd {
            Some(Dirn::Forward)
        } else if has_bwd {
            Some(Dirn::Backward)
        } else {
            None
        };
    }

    let cond = sccs.condensation(&g);

    match gen {
        Some((id, var, range)) => {
            if !opts.allow_multipass {
                // Without multipass splitting, a mix of forward- and
                // backward-requiring edges is unschedulable even when
                // acyclic.
                let mut has_fwd = false;
                let mut has_bwd = false;
                for (_, e) in g.edges() {
                    match e.label {
                        Lbl::Carried(Dirn::Forward) => has_fwd = true,
                        Lbl::Carried(Dirn::Backward) => has_bwd = true,
                        Lbl::Ordering => {}
                    }
                }
                if has_fwd && has_bwd {
                    return Err(ThunkReason::MixedDirectionCycle {
                        clauses: ents
                            .iter()
                            .flat_map(|e| e.clause_set.iter().copied())
                            .collect(),
                    });
                }
            }
            schedule_passes(
                ents, &g, &sccs, &cond, &scc_dir, &down, id, var, range, opts,
            )
        }
        None => {
            // Root: pure ordering; a single "pass" in topological order.
            match topo_sort(&cond) {
                TopoResult::Sorted(order) => {
                    let mut steps = Vec::new();
                    for c in order {
                        for &m in sccs.members[c.0].iter() {
                            steps.extend(emit_entity(&ents[m.0], &down[m.0], opts)?);
                        }
                    }
                    Ok(steps)
                }
                TopoResult::Cycle(_) => unreachable!("condensation is a DAG by construction"),
            }
        }
    }
}

/// Multi-pass emission for a generator level (§8.1.3), on the SCC
/// condensation DAG.
#[allow(clippy::too_many_arguments)]
fn schedule_passes(
    ents: &[Entity<'_>],
    g: &DiGraph<Lbl>,
    sccs: &hac_graph::Sccs,
    cond: &DiGraph<Lbl>,
    scc_dir: &[Option<Dirn>],
    down: &[Vec<LevelEdge>],
    id: &LoopId,
    var: &str,
    range: &Range,
    opts: &SchedOptions,
) -> Result<Vec<Step>, ThunkReason> {
    let n = cond.node_count();
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut steps = Vec::new();

    while !remaining.is_empty() {
        // Work on the sub-DAG of remaining SCCs.
        let sub =
            cond.filter_edges(|e| remaining.contains(&e.src.0) && remaining.contains(&e.dst.0));
        let ready_for = |d: Dirn| -> Vec<usize> {
            // not-ready: reachable from a root via an against-direction
            // edge (§8.1.3) or from an SCC requiring the other
            // direction (including that SCC itself).
            let against = |l: &Lbl| matches!(l, Lbl::Carried(req) if *req != d);
            let mut not_ready = mark_not_ready(&sub, against);
            let bad_starts: Vec<NodeId> = remaining
                .iter()
                .filter(|&&c| scc_dir[c].map(|req| req != d).unwrap_or(false))
                .map(|&c| NodeId(c))
                .collect();
            for (i, reach) in sub.reachable_from(&bad_starts).into_iter().enumerate() {
                if reach {
                    not_ready[i] = true;
                }
            }
            remaining
                .iter()
                .filter(|&&c| !not_ready[c])
                .copied()
                .collect()
        };
        // Prefer the direction whose ready set is larger; ties go
        // forward. (The paper: "schedule the first pass in a direction
        // consistent with the dependence edges leaving the roots".)
        let fwd = ready_for(Dirn::Forward);
        let bwd = ready_for(Dirn::Backward);
        let (dirn, pass) = if bwd.len() > fwd.len() {
            (Dirn::Backward, bwd)
        } else {
            (Dirn::Forward, fwd)
        };
        assert!(
            !pass.is_empty(),
            "multipass scheduling must make progress on a DAG"
        );

        // Order pass members (and SCC members inside them) by (=)
        // ordering edges.
        let pass_set: BTreeSet<usize> = pass.iter().copied().collect();
        let mut order_graph: DiGraph<()> = DiGraph::with_nodes(ents.len());
        for (_, e) in g.edges() {
            if e.label == Lbl::Ordering
                && pass_set.contains(&sccs.component_of(e.src))
                && pass_set.contains(&sccs.component_of(e.dst))
            {
                order_graph.add_edge(e.src, e.dst, ());
            }
        }
        let member_set: BTreeSet<usize> = pass
            .iter()
            .flat_map(|&c| sccs.members[c].iter().map(|n| n.0))
            .collect();
        let order = match topo_sort(&order_graph) {
            TopoResult::Sorted(o) => o,
            TopoResult::Cycle(_) => unreachable!("(=)-cycles rejected per SCC"),
        };
        let mut body = Vec::new();
        for v in order {
            if member_set.contains(&v.0) {
                body.extend(emit_entity(&ents[v.0], &down[v.0], opts)?);
            }
        }
        steps.push(Step::Loop {
            id: *id,
            var: var.to_string(),
            range: range.clone(),
            dirn,
            body,
        });
        for c in pass {
            remaining.remove(&c);
        }
    }
    Ok(steps)
}

/// Emit one entity: its wrappers around either the clause or the
/// recursively scheduled inner loop.
fn emit_entity(
    ent: &Entity<'_>,
    down: &[LevelEdge],
    opts: &SchedOptions,
) -> Result<Vec<Step>, ThunkReason> {
    let inner = match &ent.node {
        EntityNode::Clause(sv) => vec![Step::Clause(sv.id)],
        EntityNode::Gen {
            id,
            var,
            range,
            body,
        } => {
            let ents = entities(body);
            schedule_entity_seq(&ents, down, Some((id, var, range)), opts)?
        }
    };
    Ok(wrap(inner, &ent.wrappers))
}

fn wrap(mut steps: Vec<Step>, wrappers: &[Wrapper]) -> Vec<Step> {
    for w in wrappers.iter().rev() {
        steps = vec![match w {
            Wrapper::Guard(cond) => Step::Guard {
                cond: cond.clone(),
                body: steps,
            },
            Wrapper::Let(binds) => Step::Let {
                binds: binds.clone(),
                body: steps,
            },
        }];
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_analysis::depgraph::{flow_dependences, DepKind};
    use hac_analysis::refs::collect_refs;
    use hac_analysis::search::{Confidence, TestPolicy};
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn schedule_src(src: &str, env: &ConstEnv) -> (Comp, ScheduleOutcome) {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        let outcome = schedule(&c, &flow.edges);
        (c, outcome)
    }

    fn edge(src: u32, dst: u32, dirs: &[Dir]) -> DepEdge {
        DepEdge {
            src: ClauseId(src),
            dst: ClauseId(dst),
            kind: DepKind::Flow,
            array: "a".into(),
            dv: DirVec(dirs.to_vec()),
            confidence: Confidence::Possible,
            distance: None,
            src_read: None,
            dst_read: None,
        }
    }

    #[test]
    fn section5_example1_single_forward_pass() {
        // Edges 1→2(<), 1→3(=) (0-based: 0→1(<), 0→2(=)): one forward
        // loop with clause 0 before clause 2; clause 1 anywhere.
        let env = ConstEnv::new();
        let (_, outcome) = schedule_src(
            "[* [ 3*i := 1 ] ++ [ 3*i-1 := a!(3*(i-1)) ] ++ [ 3*i-2 := a!(3*i) ] \
             | i <- [1..100] *]",
            &env,
        );
        let plan = outcome.plan().expect("thunkless");
        assert_eq!(plan.loop_count(), 1);
        match &plan.steps[0] {
            Step::Loop { dirn, .. } => assert_eq!(*dirn, Dirn::Forward),
            other => panic!("expected loop, got {other:?}"),
        }
        let order = plan.clauses();
        let pos = |c: u32| order.iter().position(|x| *x == ClauseId(c)).unwrap();
        assert!(pos(0) < pos(2), "(=) edge orders c0 before c2: {order:?}");
    }

    #[test]
    fn section5_example2_backward_inner_loop() {
        // §5 example 2: inner j loop must run backward; outer i forward.
        //   clause 0: (i,j) reads a!(i, j+1) (same i, later j → (=,>))
        //   and a!(i-1, j-1) etc. Reproduce the paper's edge set
        //   directly: 2→1(=,>), 1→2(<,>), 2→3(<).
        // Build a two-clause nest where the (=,>) edge forces backward.
        let env = ConstEnv::from_pairs([("m", 10), ("n", 20)]);
        let (_, outcome) = schedule_src(
            "[* [ (i,j) := a!(i,j+1) ] | i <- [1..m], j <- [1..n-1] *] ++ \
             [ (i,n) := 1 | i <- [1..m] ]",
            &env,
        );
        let plan = outcome.plan().expect("thunkless");
        // Find the inner loop and check its direction.
        fn find_inner(steps: &[Step]) -> Option<Dirn> {
            for s in steps {
                if let Step::Loop { body, .. } = s {
                    for b in body {
                        if let Step::Loop { dirn: d2, .. } = b {
                            return Some(*d2);
                        }
                    }
                    if let Some(d) = find_inner(body) {
                        return Some(d);
                    }
                }
            }
            None
        }
        assert_eq!(
            find_inner(&plan.steps),
            Some(Dirn::Backward),
            "{}",
            plan.render()
        );
    }

    #[test]
    fn section8_acyclic_passes() {
        // §8.1.2 example: A→B(<), B→C(>), A→C(=) — 3 separate loops
        // collapsible into 2 passes.
        let src = "[* [ 3*i := 0 ] ++ [ 3*i+1 := 0 ] ++ [ 3*i+2 := 0 ] | i <- [1..10] *]";
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let edges = vec![
            edge(0, 1, &[Dir::Lt]),
            edge(1, 2, &[Dir::Gt]),
            edge(0, 2, &[Dir::Eq]),
        ];
        let outcome = schedule(&c, &edges);
        let plan = outcome.plan().expect("thunkless");
        assert_eq!(plan.loop_count(), 2, "{}", plan.render());
        // First pass: {A, B} in some order; second pass: {C}.
        let first_pass = plan.steps[0].clauses();
        assert!(first_pass.contains(&ClauseId(0)) && first_pass.contains(&ClauseId(1)));
        assert_eq!(plan.steps[1].clauses(), vec![ClauseId(2)]);
    }

    #[test]
    fn section8_thunk_fallback_on_mixed_cycle() {
        // A→B(<), B→A(>): no direction or split works.
        let src = "[* [ 2*i := 0 ] ++ [ 2*i+1 := 0 ] | i <- [1..10] *]";
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let edges = vec![edge(0, 1, &[Dir::Lt]), edge(1, 0, &[Dir::Gt])];
        match schedule(&c, &edges) {
            ScheduleOutcome::NeedsThunks(ThunkReason::MixedDirectionCycle { clauses }) => {
                assert_eq!(clauses.len(), 2);
            }
            other => panic!("expected mixed-direction fallback, got {other:?}"),
        }
    }

    #[test]
    fn eq_cycle_needs_thunks() {
        let src = "[* [ 2*i := 0 ] ++ [ 2*i+1 := 0 ] | i <- [1..10] *]";
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let edges = vec![edge(0, 1, &[Dir::Eq]), edge(1, 0, &[Dir::Eq])];
        assert!(matches!(
            schedule(&c, &edges),
            ScheduleOutcome::NeedsThunks(ThunkReason::LoopIndependentCycle { .. })
        ));
    }

    #[test]
    fn self_bottom_detected() {
        let env = ConstEnv::new();
        let (_, outcome) = schedule_src("[ i := a!i + 1 | i <- [1..5] ]", &env);
        assert!(matches!(
            outcome,
            ScheduleOutcome::NeedsThunks(ThunkReason::SelfDependentInstance { .. })
        ));
    }

    #[test]
    fn wavefront_schedules_forward_forward() {
        let env = ConstEnv::from_pairs([("n", 6)]);
        let (_, outcome) = schedule_src(
            "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
             [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]",
            &env,
        );
        let plan = outcome.plan().expect("thunkless wavefront");
        // Border clauses must come before the interior (ordering edges
        // from border writes to interior reads are loop-independent
        // `()` edges at the root).
        let order = plan.clauses();
        let pos = |c: u32| order.iter().position(|x| *x == ClauseId(c)).unwrap();
        assert!(pos(0) < pos(2) && pos(1) < pos(2), "{order:?}");
        // Interior nest runs forward/forward.
        fn dirs(steps: &[Step], out: &mut Vec<Dirn>) {
            for s in steps {
                if let Step::Loop { dirn, body, .. } = s {
                    out.push(*dirn);
                    dirs(body, out);
                }
            }
        }
        let mut ds = Vec::new();
        dirs(&plan.steps, &mut ds);
        assert!(ds.iter().all(|d| *d == Dirn::Forward), "{ds:?}");
    }

    #[test]
    fn backward_recurrence_runs_backward() {
        // a!i = a!(i+1) + 1 with border at n: loop must run backward.
        let env = ConstEnv::from_pairs([("n", 10)]);
        let (_, outcome) = schedule_src("[ n := 0 ] ++ [ i := a!(i+1) + 1 | i <- [1..n-1] ]", &env);
        let plan = outcome.plan().expect("thunkless");
        fn first_loop_dir(steps: &[Step]) -> Option<Dirn> {
            for s in steps {
                match s {
                    Step::Loop { dirn, .. } => return Some(*dirn),
                    Step::Guard { body, .. } | Step::Let { body, .. } => {
                        if let Some(d) = first_loop_dir(body) {
                            return Some(d);
                        }
                    }
                    Step::Clause(_) => {}
                }
            }
            None
        }
        assert_eq!(first_loop_dir(&plan.steps), Some(Dirn::Backward));
    }

    #[test]
    fn guards_and_lets_preserved_in_plan() {
        let env = ConstEnv::new();
        let (_, outcome) = schedule_src(
            "[* ([ i := v ] where v = 2) ++ [* [ i+10 := 1 ] | i > 2 *] | i <- [1..5] *]",
            &env,
        );
        let plan = outcome.plan().expect("thunkless");
        let rendered = plan.render();
        assert!(rendered.contains("let v:"), "{rendered}");
        assert!(rendered.contains("if i > 2:"), "{rendered}");
    }

    #[test]
    fn star_edge_blocks_single_direction() {
        // A self `*` edge expands to <, =, >: the < and > conflict, and
        // the = self-edge on a bare clause is ⊥ — either way: thunks.
        let src = "[* [ i := 0 ] | i <- [1..10] *]";
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let edges = vec![edge(0, 0, &[Dir::Any])];
        assert!(matches!(
            schedule(&c, &edges),
            ScheduleOutcome::NeedsThunks(_)
        ));
    }

    #[test]
    fn multipass_can_be_disabled() {
        // The §8.1.2 acyclic example schedules in 2 passes by default;
        // with multipass off it must fall back to thunks.
        let src = "[* [ 3*i := 0 ] ++ [ 3*i+1 := 0 ] ++ [ 3*i+2 := 0 ] | i <- [1..10] *]";
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let edges = vec![
            edge(0, 1, &[Dir::Lt]),
            edge(1, 2, &[Dir::Gt]),
            edge(0, 2, &[Dir::Eq]),
        ];
        assert!(schedule(&c, &edges).plan().is_some());
        let no_split = SchedOptions {
            allow_multipass: false,
        };
        assert!(matches!(
            schedule_with(&c, &edges, &no_split),
            ScheduleOutcome::NeedsThunks(ThunkReason::MixedDirectionCycle { .. })
        ));
    }

    #[test]
    fn no_edges_single_forward_pass() {
        let env = ConstEnv::new();
        let (_, outcome) = schedule_src("[ i := 1 | i <- [1..10] ]", &env);
        let plan = outcome.plan().unwrap();
        assert_eq!(plan.loop_count(), 1);
    }
}
