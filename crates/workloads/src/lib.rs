//! # hac-workloads
//!
//! The paper's evaluation kernels for the `hac` reproduction of
//! Anderson & Hudak (PLDI 1990): each kernel ships as `hac` source text
//! plus a hand-coded Rust oracle (the "Fortran" baseline of §11's
//! performance claim). See `DESIGN.md`'s experiment index for the
//! mapping from kernels to the paper's worked examples.

pub mod extra;
pub mod kernels;
pub mod util;

pub use extra::*;
pub use kernels::*;
pub use util::{assert_close, matrix, random_matrix, random_vector, vector, XorShift};
