//! Shared helpers: deterministic input generation and buffer builders.

use hac_runtime::value::ArrayBuf;

/// A tiny deterministic xorshift PRNG for reproducible inputs.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator (seed must be nonzero; zero is remapped).
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A 1-D buffer `[1..n]` filled by `f(i)`.
pub fn vector(n: i64, mut f: impl FnMut(i64) -> f64) -> ArrayBuf {
    let mut b = ArrayBuf::new(&[(1, n)], 0.0);
    for i in 1..=n {
        b.set("v", &[i], f(i)).unwrap();
    }
    b
}

/// A 2-D buffer `[1..m]×[1..n]` filled by `f(i, j)`.
pub fn matrix(m: i64, n: i64, mut f: impl FnMut(i64, i64) -> f64) -> ArrayBuf {
    let mut b = ArrayBuf::new(&[(1, m), (1, n)], 0.0);
    for i in 1..=m {
        for j in 1..=n {
            b.set("m", &[i, j], f(i, j)).unwrap();
        }
    }
    b
}

/// A reproducible random vector.
pub fn random_vector(n: i64, seed: u64) -> ArrayBuf {
    let mut rng = XorShift::new(seed);
    vector(n, |_| rng.next_f64())
}

/// A reproducible random matrix.
pub fn random_matrix(m: i64, n: i64, seed: u64) -> ArrayBuf {
    let mut rng = XorShift::new(seed);
    matrix(m, n, |_, _| rng.next_f64())
}

/// Assert two buffers are element-wise close (oracle comparisons).
///
/// # Panics
/// Panics with the first differing element.
pub fn assert_close(got: &ArrayBuf, want: &ArrayBuf, tol: f64) {
    assert_eq!(got.bounds(), want.bounds(), "shape mismatch");
    for (k, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert!(
            (g - w).abs() <= tol * (1.0 + w.abs()),
            "element {k}: got {g}, want {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = a.next_f64();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn builders_fill() {
        let v = vector(3, |i| i as f64);
        assert_eq!(v.data(), &[1.0, 2.0, 3.0]);
        let m = matrix(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.data(), &[11.0, 12.0, 21.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "element")]
    fn assert_close_panics_on_mismatch() {
        let a = vector(2, |_| 1.0);
        let b = vector(2, |_| 2.0);
        assert_close(&a, &b, 1e-12);
    }
}
