//! The paper's kernels as source programs plus hand-coded Rust oracles.
//!
//! Every kernel provides `source()` (the `hac` program text, with the
//! size bound to parameter `n` at compile time) and `oracle(...)` (the
//! "Fortran" baseline: a direct Rust loop nest producing the same
//! array). Integration tests assert pipeline == thunked == oracle;
//! benchmarks time the strategies against the oracle.

use hac_runtime::value::ArrayBuf;

use crate::util::{matrix, vector};

// ---------------------------------------------------------------------
// §3 — the wavefront recurrence (E3)
// ---------------------------------------------------------------------

/// The paper's §3 example: north/west borders 1, interior the sum of
/// north, west, and north-west neighbors (Delannoy numbers).
pub fn wavefront_source() -> &'static str {
    r#"
param n;
letrec* a = array ((1,1),(n,n))
   ([ (1,j) := 1 | j <- [1..n] ] ++
    [ (i,1) := 1 | i <- [2..n] ] ++
    [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
       | i <- [2..n], j <- [2..n] ]);
"#
}

/// Hand-coded wavefront.
pub fn wavefront_oracle(n: i64) -> ArrayBuf {
    let mut a = ArrayBuf::new(&[(1, n), (1, n)], 0.0);
    for j in 1..=n {
        a.set("a", &[1, j], 1.0).unwrap();
    }
    for i in 2..=n {
        a.set("a", &[i, 1], 1.0).unwrap();
    }
    for i in 2..=n {
        for j in 2..=n {
            let v = a.get("a", &[i - 1, j]).unwrap()
                + a.get("a", &[i, j - 1]).unwrap()
                + a.get("a", &[i - 1, j - 1]).unwrap();
            a.set("a", &[i, j], v).unwrap();
        }
    }
    a
}

// ---------------------------------------------------------------------
// §5 example 1 — three clauses over one loop (E1)
// ---------------------------------------------------------------------

/// §5 example 1, scaled by `n` = loop trip count (array size `3n`).
/// Clause 1 writes `3i`, clause 2 reads `3(i-1)`, clause 3 reads `3i`.
pub fn section5_example1_source() -> &'static str {
    r#"
param n;
letrec* a = array (1,3*n)
   [* [ 3*i := i ] ++
      [ 3*i-1 := if i == 1 then 0 else a!(3*(i-1)) + 1 ] ++
      [ 3*i-2 := a!(3*i) * 2 ]
    | i <- [1..n] *];
"#
}

/// Hand-coded §5 example 1.
pub fn section5_example1_oracle(n: i64) -> ArrayBuf {
    let mut a = ArrayBuf::new(&[(1, 3 * n)], 0.0);
    for i in 1..=n {
        a.set("a", &[3 * i], i as f64).unwrap();
    }
    for i in 1..=n {
        let v = if i == 1 {
            0.0
        } else {
            a.get("a", &[3 * (i - 1)]).unwrap() + 1.0
        };
        a.set("a", &[3 * i - 1], v).unwrap();
        let w = a.get("a", &[3 * i]).unwrap() * 2.0;
        a.set("a", &[3 * i - 2], w).unwrap();
    }
    a
}

// ---------------------------------------------------------------------
// §5 example 2 — backward inner loop (E2)
// ---------------------------------------------------------------------

/// §5 example 2 shape: the interior reads its east neighbor, so the
/// inner loop must run backward; a border column seeds it.
pub fn section5_example2_source() -> &'static str {
    r#"
param m, n;
letrec* a = array ((1,1),(m,n))
   ([* [ (i,j) := a!(i,j+1) + i ] | i <- [1..m], j <- [1..n-1] *] ++
    [ (i,n) := i | i <- [1..m] ]);
"#
}

/// Hand-coded §5 example 2.
pub fn section5_example2_oracle(m: i64, n: i64) -> ArrayBuf {
    let mut a = ArrayBuf::new(&[(1, m), (1, n)], 0.0);
    for i in 1..=m {
        a.set("a", &[i, n], i as f64).unwrap();
    }
    for i in 1..=m {
        for j in (1..n).rev() {
            let v = a.get("a", &[i, j + 1]).unwrap() + i as f64;
            a.set("a", &[i, j], v).unwrap();
        }
    }
    a
}

// ---------------------------------------------------------------------
// First-order linear recurrence (E4 thunk-overhead kernel)
// ---------------------------------------------------------------------

/// `a!1 = 1; a!i = a!(i-1) * c + i` — the classic sequential
/// recurrence whose thunked evaluation allocates one thunk per element.
pub fn recurrence_source() -> &'static str {
    r#"
param n;
letrec* a = array (1,n)
   ([ 1 := 1 ] ++ [ i := a!(i-1) * 0.5 + i | i <- [2..n] ]);
"#
}

/// Hand-coded recurrence.
pub fn recurrence_oracle(n: i64) -> ArrayBuf {
    let mut a = vector(n, |_| 0.0);
    a.set("a", &[1], 1.0).unwrap();
    for i in 2..=n {
        let v = a.get("a", &[i - 1]).unwrap() * 0.5 + i as f64;
        a.set("a", &[i], v).unwrap();
    }
    a
}

// ---------------------------------------------------------------------
// Tridiagonal (Thomas) forward sweep — scientific substrate kernel
// ---------------------------------------------------------------------

/// Forward elimination of a constant-coefficient tridiagonal system:
/// `c'!1 = c/b; c'!i = c / (b - sub*c'!(i-1))`, then back-substitution
/// seeds — expressed with two mutually ordered recurrences.
pub fn thomas_source() -> &'static str {
    r#"
param n;
input d (1,n);
letrec* cp = array (1,n)
   ([ 1 := 0.25 ] ++
    [ i := 1 / (4 - cp!(i-1)) | i <- [2..n] ]);
letrec* dp = array (1,n)
   ([ 1 := d!1 / 4 ] ++
    [ i := (d!i - dp!(i-1)) / (4 - cp!(i-1)) | i <- [2..n] ]);
letrec* x = array (1,n)
   ([ n := dp!n ] ++
    [ i := dp!i - cp!i * x!(i+1) | i <- [1..n-1] ]);
result x;
"#
}

/// Hand-coded Thomas solve of the same system
/// (diag 4, off-diagonals 1, right-hand side `d`).
pub fn thomas_oracle(d: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut cp = vec![0.0f64; (n + 1) as usize];
    let mut dp = vec![0.0f64; (n + 1) as usize];
    cp[1] = 0.25;
    dp[1] = d.get("d", &[1]).unwrap() / 4.0;
    for i in 2..=n as usize {
        cp[i] = 1.0 / (4.0 - cp[i - 1]);
        dp[i] = (d.get("d", &[i as i64]).unwrap() - dp[i - 1]) / (4.0 - cp[i - 1]);
    }
    let mut x = vector(n, |_| 0.0);
    x.set("x", &[n], dp[n as usize]).unwrap();
    for i in (1..n).rev() {
        let v = dp[i as usize] - cp[i as usize] * x.get("x", &[i + 1]).unwrap();
        x.set("x", &[i], v).unwrap();
    }
    x
}

// ---------------------------------------------------------------------
// §9 — Jacobi step as bigupd (E8)
// ---------------------------------------------------------------------

/// §9 Jacobi relaxation step over the interior of an `n×n` mesh, all
/// four neighbor reads of the *old* array.
pub fn jacobi_source() -> &'static str {
    r#"
param n;
input a ((1,1),(n,n));
b = bigupd a [ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4
             | i <- [2..n-1], j <- [2..n-1] ];
result b;
"#
}

/// Hand-coded Jacobi step against a pristine copy.
pub fn jacobi_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut out = a.clone();
    for i in 2..n {
        for j in 2..n {
            let v = (a.get("a", &[i - 1, j]).unwrap()
                + a.get("a", &[i, j - 1]).unwrap()
                + a.get("a", &[i + 1, j]).unwrap()
                + a.get("a", &[i, j + 1]).unwrap())
                / 4.0;
            out.set("a", &[i, j], v).unwrap();
        }
    }
    out
}

// ---------------------------------------------------------------------
// Out-of-place stencils (E19 parallel-scaling kernels)
// ---------------------------------------------------------------------

/// Out-of-place Jacobi step: the new interior is built as a fresh
/// array from the *input* mesh only. No self-reference means no flow
/// dependences, so §10 proves every loop parallelizable — the
/// dependence-free counterpart of [`jacobi_source`] (whose in-place
/// `bigupd` carries anti dependences and must run sequentially).
pub fn jacobi_step_source() -> &'static str {
    r#"
param n;
input a ((1,1),(n,n));
let b = array ((2,2),(n-1,n-1))
   [ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4
      | i <- [2..n-1], j <- [2..n-1] ];
result b;
"#
}

/// Hand-coded out-of-place Jacobi step (interior only).
pub fn jacobi_step_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut b = ArrayBuf::new(&[(2, n - 1), (2, n - 1)], 0.0);
    for i in 2..n {
        for j in 2..n {
            let v = (a.get("a", &[i - 1, j]).unwrap()
                + a.get("a", &[i, j - 1]).unwrap()
                + a.get("a", &[i + 1, j]).unwrap()
                + a.get("a", &[i, j + 1]).unwrap())
                / 4.0;
            b.set("b", &[i, j], v).unwrap();
        }
    }
    b
}

/// 1-D three-point relaxation (weighted smoothing) into a fresh
/// vector — single clause, identity index map, input reads only:
/// collision- and empties-checks elide and every loop is §10-parallel.
pub fn relaxation_source() -> &'static str {
    r#"
param n;
input u (1,n);
let v = array (2,n-1)
   [ i := 0.25 * u!(i-1) + 0.5 * u!i + 0.25 * u!(i+1) | i <- [2..n-1] ];
result v;
"#
}

/// Hand-coded relaxation kernel.
pub fn relaxation_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut v = ArrayBuf::new(&[(2, n - 1)], 0.0);
    for i in 2..n {
        let x = 0.25 * u.get("u", &[i - 1]).unwrap()
            + 0.5 * u.get("u", &[i]).unwrap()
            + 0.25 * u.get("u", &[i + 1]).unwrap();
        v.set("v", &[i], x).unwrap();
    }
    v
}

// ---------------------------------------------------------------------
// §9 — Gauss–Seidel / SOR step (Livermore Kernel 23 shape, E9)
// ---------------------------------------------------------------------

/// §9 Gauss–Seidel: north/west neighbors are *new* values (`b!`),
/// south/east are old (`a!`) — the LK23 northwest-to-southeast
/// wavefront.
pub fn sor_source() -> &'static str {
    r#"
param n;
input a ((1,1),(n,n));
b = bigupd a [ (i,j) := (b!(i-1,j) + b!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4
             | i <- [2..n-1], j <- [2..n-1] ];
result b;
"#
}

/// Hand-coded in-place Gauss–Seidel sweep.
pub fn sor_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut out = a.clone();
    for i in 2..n {
        for j in 2..n {
            let v = (out.get("a", &[i - 1, j]).unwrap()
                + out.get("a", &[i, j - 1]).unwrap()
                + out.get("a", &[i + 1, j]).unwrap()
                + out.get("a", &[i, j + 1]).unwrap())
                / 4.0;
            out.set("a", &[i, j], v).unwrap();
        }
    }
    out
}

// ---------------------------------------------------------------------
// §9 — LINPACK row operations (E7, E10)
// ---------------------------------------------------------------------

/// §9 LINPACK fragment: swap rows 1 and 2 of an `m×n` matrix.
pub fn row_swap_source() -> &'static str {
    r#"
param m, n;
input a ((1,1),(m,n));
b = bigupd a ([ (1,j) := a!(2,j) | j <- [1..n] ] ++
              [ (2,j) := a!(1,j) | j <- [1..n] ]);
result b;
"#
}

/// Hand-coded row swap.
pub fn row_swap_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut out = a.clone();
    for j in 1..=n {
        let top = a.get("a", &[1, j]).unwrap();
        let bot = a.get("a", &[2, j]).unwrap();
        out.set("a", &[1, j], bot).unwrap();
        out.set("a", &[2, j], top).unwrap();
    }
    out
}

/// §9: scale row 1 by 2.5 — in place with no copying.
pub fn row_scale_source() -> &'static str {
    r#"
param m, n;
input a ((1,1),(m,n));
b = bigupd a [ (1,j) := 2.5 * a!(1,j) | j <- [1..n] ];
result b;
"#
}

/// Hand-coded row scale.
pub fn row_scale_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut out = a.clone();
    for j in 1..=n {
        let v = 2.5 * a.get("a", &[1, j]).unwrap();
        out.set("a", &[1, j], v).unwrap();
    }
    out
}

/// §9: in-place SAXPY — row 1 += 3 × row 2.
pub fn saxpy_source() -> &'static str {
    r#"
param m, n;
input a ((1,1),(m,n));
b = bigupd a [ (1,j) := a!(1,j) + 3 * a!(2,j) | j <- [1..n] ];
result b;
"#
}

/// Hand-coded in-place SAXPY.
pub fn saxpy_oracle(a: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut out = a.clone();
    for j in 1..=n {
        let v = a.get("a", &[1, j]).unwrap() + 3.0 * a.get("a", &[2, j]).unwrap();
        out.set("a", &[1, j], v).unwrap();
    }
    out
}

// ---------------------------------------------------------------------
// Deforestation kernels (E11) — non-recursive vector comprehensions
// ---------------------------------------------------------------------

/// An elementwise vector kernel with two appended clause families —
/// enough `++` structure to make naive TE re-cons visibly expensive.
pub fn deforest_source() -> &'static str {
    r#"
param n;
input u (1,n);
let a = array (1,2*n)
   ([ 2*i := u!i * u!i + 1 | i <- [1..n] ] ++
    [ 2*i-1 := u!i - 0.5 | i <- [1..n] ]);
result a;
"#
}

/// Hand-coded deforestation kernel.
pub fn deforest_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut a = ArrayBuf::new(&[(1, 2 * n)], 0.0);
    for i in 1..=n {
        let x = u.get("u", &[i]).unwrap();
        a.set("a", &[2 * i], x * x + 1.0).unwrap();
        a.set("a", &[2 * i - 1], x - 0.5).unwrap();
    }
    a
}

// ---------------------------------------------------------------------
// Collision / empties kernels (E5, E6)
// ---------------------------------------------------------------------

/// An even/odd split permutation: the analysis proves no collision and
/// no empties, so all runtime checks can be elided.
pub fn permutation_source() -> &'static str {
    r#"
param n;
input u (1,n);
let a = array (1,2*n)
   ([ 2*i := u!i | i <- [1..n] ] ++
    [ 2*i-1 := -u!i | i <- [1..n] ]);
result a;
"#
}

/// Hand-coded permutation kernel.
pub fn permutation_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut a = ArrayBuf::new(&[(1, 2 * n)], 0.0);
    for i in 1..=n {
        let x = u.get("u", &[i]).unwrap();
        a.set("a", &[2 * i], x).unwrap();
        a.set("a", &[2 * i - 1], -x).unwrap();
    }
    a
}

// ---------------------------------------------------------------------
// Histogram (accumArray)
// ---------------------------------------------------------------------

/// Histogram of `u` values scaled into 10 buckets via `floor`.
pub fn histogram_source() -> &'static str {
    r#"
param n;
input u (1,n);
let h = accumArray (+) 0 (0,9) [ floor(u!i * 10) := 1.0 | i <- [1..n] ];
result h;
"#
}

/// Hand-coded histogram.
pub fn histogram_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut h = ArrayBuf::new(&[(0, 9)], 0.0);
    for i in 1..=n {
        let b = (u.get("u", &[i]).unwrap() * 10.0).floor() as i64;
        let old = h.get("h", &[b]).unwrap();
        h.set("h", &[b], old + 1.0).unwrap();
    }
    h
}

// ---------------------------------------------------------------------
// Matrix multiply (multi-input, non-recursive)
// ---------------------------------------------------------------------

/// Naive n×n matmul written as a comprehension with an inner reduction
/// recurrence over a helper array of partial sums.
pub fn matmul_source() -> &'static str {
    r#"
param n;
input x ((1,1),(n,n));
input y ((1,1),(n,n));
letrec* p = array ((1,1),(n,n*n))
   ([ (i,(j-1)*n+1) := x!(i,1) * y!(1,j) | i <- [1..n], j <- [1..n] ] ++
    [ (i,(j-1)*n+k) := p!(i,(j-1)*n+k-1) + x!(i,k) * y!(k,j)
       | i <- [1..n], j <- [1..n], k <- [2..n] ]);
let c = array ((1,1),(n,n)) [ (i,j) := p!(i,j*n) | i <- [1..n], j <- [1..n] ];
result c;
"#
}

/// Hand-coded matmul.
pub fn matmul_oracle(x: &ArrayBuf, y: &ArrayBuf, n: i64) -> ArrayBuf {
    matrix(n, n, |i, j| {
        let mut acc = 0.0;
        for k in 1..=n {
            acc += x.get("x", &[i, k]).unwrap() * y.get("y", &[k, j]).unwrap();
        }
        acc
    })
}

/// Dot product as a running-sum recurrence (`programs/dot.hac`): the
/// `k` loop's only carried dependence is the accumulator cell written
/// one iteration ago, so the fusion pass overlays a register-
/// accumulator dot kernel.
pub fn dot_source() -> &'static str {
    r#"
param n;
input a (1,n);
input b (1,n);
letrec* s = array (1,n)
   ([ 1 := a!1 * b!1 ] ++
    [ k := s!(k-1) + a!k * b!k | k <- [2..n] ]);
let r = array (1,1) [ 1 := s!n ];
result r;
"#
}

/// Hand-coded dot product, folding strictly left-to-right like the
/// scalar tape (same FP op order, so the comparison is bit-exact).
pub fn dot_oracle(a: &ArrayBuf, b: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut acc = a.get("a", &[1]).unwrap() * b.get("b", &[1]).unwrap();
    for k in 2..=n {
        acc += a.get("a", &[k]).unwrap() * b.get("b", &[k]).unwrap();
    }
    vector(1, |_| acc)
}

/// Matrix–vector product via per-row partial sums
/// (`programs/matvec.hac`): the outer `i` loop is proven parallel, the
/// inner `k` loop is a reduction — so a fused dot kernel runs inside
/// each chunk of the parallel region.
pub fn matvec_source() -> &'static str {
    r#"
param n;
input m ((1,1),(n,n));
input x (1,n);
letrec* p = array ((1,1),(n,n))
   ([ (i,1) := m!(i,1) * x!1 | i <- [1..n] ] ++
    [ (i,k) := p!(i,k-1) + m!(i,k) * x!k | i <- [1..n], k <- [2..n] ]);
let y = array (1,n) [ i := p!(i,n) | i <- [1..n] ];
result y;
"#
}

/// Hand-coded matvec, left-to-right per row (bit-exact vs the tape).
pub fn matvec_oracle(m: &ArrayBuf, x: &ArrayBuf, n: i64) -> ArrayBuf {
    vector(n, |i| {
        let mut acc = m.get("m", &[i, 1]).unwrap() * x.get("x", &[1]).unwrap();
        for k in 2..=n {
            acc += m.get("m", &[i, k]).unwrap() * x.get("x", &[k]).unwrap();
        }
        acc
    })
}

/// The wavefront program constructed through the builder DSL — kept
/// structurally identical to [`wavefront_source`] (tested below), for
/// hosts that generate programs programmatically.
pub fn wavefront_program() -> hac_lang::ast::Program {
    use hac_lang::build::{comp, e, program};
    program()
        .param("n")
        .letrec_star(
            "a",
            [(e(1), e("n")), (e(1), e("n"))],
            comp()
                .clause([e(1), e("j")], e(1))
                .generate("j", e(1), e("n"))
                .append(
                    comp()
                        .clause([e("i"), e(1)], e(1))
                        .generate("i", e(2), e("n")),
                )
                .append(
                    comp()
                        .clause(
                            [e("i"), e("j")],
                            e("a").idx([e("i") - e(1), e("j")])
                                + e("a").idx([e("i"), e("j") - e(1)])
                                + e("a").idx([e("i") - e(1), e("j") - e(1)]),
                        )
                        // Innermost wrap first: j inner, i outer.
                        .generate("j", e(2), e("n"))
                        .generate("i", e(2), e("n")),
                ),
        )
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::parser::parse_program;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("wavefront", wavefront_source()),
            ("s5e1", section5_example1_source()),
            ("s5e2", section5_example2_source()),
            ("recurrence", recurrence_source()),
            ("thomas", thomas_source()),
            ("jacobi", jacobi_source()),
            ("jacobi_step", jacobi_step_source()),
            ("relaxation", relaxation_source()),
            ("sor", sor_source()),
            ("row_swap", row_swap_source()),
            ("row_scale", row_scale_source()),
            ("saxpy", saxpy_source()),
            ("deforest", deforest_source()),
            ("permutation", permutation_source()),
            ("histogram", histogram_source()),
            ("matmul", matmul_source()),
            ("dot", dot_source()),
            ("matvec", matvec_source()),
        ] {
            parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn builder_program_matches_source() {
        let built = wavefront_program();
        let parsed = parse_program(wavefront_source()).unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn wavefront_oracle_delannoy() {
        let a = wavefront_oracle(4);
        assert_eq!(a.get("a", &[2, 2]).unwrap(), 3.0);
        assert_eq!(a.get("a", &[3, 3]).unwrap(), 13.0);
        assert_eq!(a.get("a", &[4, 4]).unwrap(), 63.0);
    }

    #[test]
    fn row_ops_oracles() {
        let a = matrix(3, 3, |i, j| (i * 10 + j) as f64);
        let sw = row_swap_oracle(&a, 3);
        assert_eq!(sw.get("a", &[1, 2]).unwrap(), 22.0);
        assert_eq!(sw.get("a", &[2, 2]).unwrap(), 12.0);
        let sc = row_scale_oracle(&a, 3);
        assert_eq!(sc.get("a", &[1, 1]).unwrap(), 27.5);
        let sx = saxpy_oracle(&a, 3);
        assert_eq!(sx.get("a", &[1, 1]).unwrap(), 11.0 + 3.0 * 21.0);
    }

    #[test]
    fn jacobi_vs_sor_differ() {
        // Not harmonic: a linear fill is a Jacobi fixed point.
        let a = matrix(4, 4, |i, j| (i * i + j * 3) as f64);
        let j = jacobi_oracle(&a, 4);
        let s = sor_oracle(&a, 4);
        // SOR uses updated neighbors, Jacobi old ones: interior differs.
        assert_ne!(j.get("a", &[3, 3]).unwrap(), s.get("a", &[3, 3]).unwrap());
    }

    #[test]
    fn jacobi_step_matches_bigupd_interior() {
        // The out-of-place step's interior equals the bigupd Jacobi's.
        let n = 5;
        let a = matrix(n, n, |i, j| (i * 2 + j) as f64);
        let step = jacobi_step_oracle(&a, n);
        let upd = jacobi_oracle(&a, n);
        for i in 2..n {
            for j in 2..n {
                assert_eq!(
                    step.get("b", &[i, j]).unwrap(),
                    upd.get("a", &[i, j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn relaxation_oracle_weights() {
        let n = 5;
        let u = vector(n, |i| i as f64);
        let v = relaxation_oracle(&u, n);
        // Linear data is a fixed point of the 1-2-1 smoother.
        for i in 2..n {
            assert_eq!(v.get("v", &[i]).unwrap(), i as f64);
        }
    }

    #[test]
    fn thomas_oracle_solves() {
        // Verify A·x = d for the tridiag(1,4,1) system.
        let n = 6;
        let d = vector(n, |i| (i % 3 + 1) as f64);
        let x = thomas_oracle(&d, n);
        for i in 1..=n {
            let xm = if i > 1 {
                x.get("x", &[i - 1]).unwrap()
            } else {
                0.0
            };
            let xp = if i < n {
                x.get("x", &[i + 1]).unwrap()
            } else {
                0.0
            };
            let lhs = xm + 4.0 * x.get("x", &[i]).unwrap() + xp;
            assert!((lhs - d.get("d", &[i]).unwrap()).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn matmul_oracle_identity() {
        let n = 3;
        let idn = matrix(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let x = matrix(n, n, |i, j| (i * n + j) as f64);
        let c = matmul_oracle(&x, &idn, n);
        crate::util::assert_close(&c, &x, 1e-12);
    }
}
