//! Additional scientific kernels beyond the paper's worked examples:
//! scans, stencils, a heat-equation integrator, a Livermore-Kernel-23
//! style implicit-hydrodynamics sweep with coefficient arrays, and a
//! convolution — each with a hand-coded oracle.

use hac_runtime::value::ArrayBuf;

use crate::util::{matrix, vector};

/// Inclusive prefix sum of an input vector.
pub fn prefix_sum_source() -> &'static str {
    r#"
param n;
input u (1,n);
letrec* s = array (1,n)
   ([ 1 := u!1 ] ++ [ i := s!(i-1) + u!i | i <- [2..n] ]);
result s;
"#
}

/// Hand-coded prefix sum.
pub fn prefix_sum_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut s = vector(n, |_| 0.0);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += u.get("u", &[i]).unwrap();
        s.set("s", &[i], acc).unwrap();
    }
    s
}

/// Running maximum (another `foldl`-style scan, with `max`).
pub fn running_max_source() -> &'static str {
    r#"
param n;
input u (1,n);
letrec* s = array (1,n)
   ([ 1 := u!1 ] ++ [ i := max(s!(i-1), u!i) | i <- [2..n] ]);
result s;
"#
}

/// Hand-coded running max.
pub fn running_max_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut s = vector(n, |_| 0.0);
    let mut acc = f64::NEG_INFINITY;
    for i in 1..=n {
        acc = acc.max(u.get("u", &[i]).unwrap());
        s.set("s", &[i], acc).unwrap();
    }
    s
}

/// Explicit 1-D heat equation: `m` time steps over a rod of `n` cells,
/// Dirichlet boundaries, expressed as a 2-D (time × space) recurrence
/// — a wavefront purely in time.
pub fn heat1d_source() -> &'static str {
    r#"
param n, m;
input u0 (1,n);
letrec* u = array ((0,1),(m,n))
   ([ (0,j) := u0!j | j <- [1..n] ] ++
    [ (t,1) := u0!1 | t <- [1..m] ] ++
    [ (t,n) := u0!n | t <- [1..m] ] ++
    [ (t,j) := u!(t-1,j) + 0.25 * (u!(t-1,j-1) - 2 * u!(t-1,j) + u!(t-1,j+1))
       | t <- [1..m], j <- [2..n-1] ]);
result u;
"#
}

/// Hand-coded explicit heat stepping.
pub fn heat1d_oracle(u0: &ArrayBuf, n: i64, m: i64) -> ArrayBuf {
    let mut u = ArrayBuf::new(&[(0, m), (1, n)], 0.0);
    for j in 1..=n {
        u.set("u", &[0, j], u0.get("u0", &[j]).unwrap()).unwrap();
    }
    for t in 1..=m {
        u.set("u", &[t, 1], u0.get("u0", &[1]).unwrap()).unwrap();
        u.set("u", &[t, n], u0.get("u0", &[n]).unwrap()).unwrap();
        for j in 2..n {
            let prev = |jj: i64| u.get("u", &[t - 1, jj]).unwrap();
            let v = prev(j) + 0.25 * (prev(j - 1) - 2.0 * prev(j) + prev(j + 1));
            u.set("u", &[t, j], v).unwrap();
        }
    }
    u
}

/// A Livermore-Kernel-23-style implicit hydrodynamics fragment: the
/// paper says the §9 Gauss–Seidel example "has the same
/// northwest-to-southeast wavefront structure". Coefficient arrays
/// multiply the already-updated north/west neighbors.
pub fn lk23_source() -> &'static str {
    r#"
param n;
input za ((1,1),(n,n));
input zr ((1,1),(n,n));
input zb ((1,1),(n,n));
qa = bigupd za [ (j,k) := zr!(j,k) * qa!(j-1,k) + zb!(j,k) * qa!(j,k-1)
                 + 0.175 * (za!(j+1,k) + za!(j,k+1))
               | j <- [2..n-1], k <- [2..n-1] ];
result qa;
"#
}

/// Hand-coded LK23-style sweep.
pub fn lk23_oracle(za: &ArrayBuf, zr: &ArrayBuf, zb: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut qa = za.clone();
    for j in 2..n {
        for k in 2..n {
            let v = zr.get("zr", &[j, k]).unwrap() * qa.get("qa", &[j - 1, k]).unwrap()
                + zb.get("zb", &[j, k]).unwrap() * qa.get("qa", &[j, k - 1]).unwrap()
                + 0.175 * (za.get("za", &[j + 1, k]).unwrap() + za.get("za", &[j, k + 1]).unwrap());
            qa.set("qa", &[j, k], v).unwrap();
        }
    }
    qa
}

/// 3-tap convolution of a vector with fixed weights (no recursion:
/// every loop vectorizable).
pub fn convolution_source() -> &'static str {
    r#"
param n;
input u (1,n);
let c = array (2,n-1)
   [ i := 0.25 * u!(i-1) + 0.5 * u!i + 0.25 * u!(i+1) | i <- [2..n-1] ];
result c;
"#
}

/// Hand-coded convolution.
pub fn convolution_oracle(u: &ArrayBuf, n: i64) -> ArrayBuf {
    let mut c = ArrayBuf::new(&[(2, n - 1)], 0.0);
    for i in 2..n {
        let v = 0.25 * u.get("u", &[i - 1]).unwrap()
            + 0.5 * u.get("u", &[i]).unwrap()
            + 0.25 * u.get("u", &[i + 1]).unwrap();
        c.set("c", &[i], v).unwrap();
    }
    c
}

/// Pascal's triangle packed into a lower-triangular matrix (guards
/// exercise conditional clauses inside a recurrence; the upper triangle
/// is written explicitly because `letrec*` demands every element).
pub fn pascal_source() -> &'static str {
    r#"
param n;
letrec* p = array ((1,1),(n,n))
   ([ (i,1) := 1 | i <- [1..n] ] ++
    [ (i,i) := 1 | i <- [2..n] ] ++
    [ (i,j) := p!(i-1,j-1) + p!(i-1,j) | i <- [3..n], j <- [2..n], j < i ] ++
    [ (i,j) := 0 | i <- [1..n], j <- [2..n], j > i ]);
result p;
"#
}

/// Hand-coded Pascal triangle (zero above the diagonal).
pub fn pascal_oracle(n: i64) -> ArrayBuf {
    let mut p = matrix(n, n, |_, _| 0.0);
    for i in 1..=n {
        p.set("p", &[i, 1], 1.0).unwrap();
        if i >= 2 {
            p.set("p", &[i, i], 1.0).unwrap();
        }
    }
    for i in 3..=n {
        for j in 2..i {
            let v = p.get("p", &[i - 1, j - 1]).unwrap() + p.get("p", &[i - 1, j]).unwrap();
            p.set("p", &[i, j], v).unwrap();
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::parser::parse_program;

    #[test]
    fn extra_sources_parse() {
        for (name, src) in [
            ("prefix_sum", prefix_sum_source()),
            ("running_max", running_max_source()),
            ("heat1d", heat1d_source()),
            ("lk23", lk23_source()),
            ("convolution", convolution_source()),
            ("pascal", pascal_source()),
        ] {
            parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn prefix_sum_oracle_sums() {
        let u = vector(4, |i| i as f64);
        let s = prefix_sum_oracle(&u, 4);
        assert_eq!(s.data(), &[1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn pascal_oracle_binomials() {
        let p = pascal_oracle(6);
        assert_eq!(p.get("p", &[5, 2]).unwrap(), 4.0);
        assert_eq!(p.get("p", &[5, 3]).unwrap(), 6.0);
        assert_eq!(p.get("p", &[6, 3]).unwrap(), 10.0);
        assert_eq!(p.get("p", &[3, 5]).unwrap(), 0.0, "above diagonal");
    }

    #[test]
    fn heat1d_conserves_boundaries() {
        let u0 = vector(6, |i| if i == 3 { 10.0 } else { 0.0 });
        let u = heat1d_oracle(&u0, 6, 4);
        for t in 0..=4 {
            assert_eq!(u.get("u", &[t, 1]).unwrap(), 0.0);
            assert_eq!(u.get("u", &[t, 6]).unwrap(), 0.0);
        }
        // Heat spreads but total interior heat decays toward boundary.
        assert!(u.get("u", &[4, 3]).unwrap() < 10.0);
        assert!(u.get("u", &[4, 2]).unwrap() > 0.0);
    }

    #[test]
    fn convolution_oracle_weights() {
        let u = vector(5, |i| i as f64);
        let c = convolution_oracle(&u, 5);
        assert_eq!(
            c.get("c", &[3]).unwrap(),
            0.25 * 2.0 + 0.5 * 3.0 + 0.25 * 4.0
        );
    }
}
