//! A self-contained, offline reimplementation of the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace uses.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched; this shim keeps the benches runnable with the same
//! source. It does real wall-clock measurement (warm-up, then
//! `sample_size` timed samples, reporting min/median/max per
//! iteration) but none of Criterion's statistics, baselines, or plots.
//!
//! Setting `CRITERION_JSON=<path>` additionally writes every
//! measurement to `<path>` as one JSON document
//! (`{"benchmarks": [{"id": ..., "ns_per_iter": {"min": ...,
//! "median": ..., "max": ...}}, ...]}`), rewritten after each result so
//! the file is valid even if the bench binary is interrupted.

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: holds timing configuration and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            samples: 12,
        }
    }
}

impl Criterion {
    /// Time spent running the closure before measurement begins.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Total time budget split across the measured samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.samples = n.max(1);
        self
    }

    /// Accepted for source compatibility; this shim never plots.
    pub fn without_plots(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, f);
    }
}

/// A named collection of benchmarks sharing the driver's config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, |b| f(b, input));
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, |b| f(b));
    }

    /// End the group (kept for source compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Per-iteration seconds: (min, median, max), filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measure the closure: warm up, then time `samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = (warm_start.elapsed().as_secs_f64() / warm_iters as f64).max(1e-9);
        let target = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((target / per_iter).ceil() as u64).clamp(1, u64::MAX);

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        self.result = Some((times[0], median, times[times.len() - 1]));
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(c: &Criterion, label: &str, f: F) {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        samples: c.samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((lo, mid, hi)) => {
            println!(
                "{label:<40} time: [{} {} {}]",
                fmt_time(lo),
                fmt_time(mid),
                fmt_time(hi)
            );
            record_json(label, lo, mid, hi);
        }
        None => println!("{label:<40} (no measurement: iter() was not called)"),
    }
}

/// All measurements taken so far, for the `CRITERION_JSON` report.
static RESULTS: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

fn record_json(label: &str, lo: f64, mid: f64, hi: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let mut results = RESULTS.lock().expect("results lock");
    results.push((label.to_string(), lo, mid, hi));
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (id, lo, mid, hi)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {{\"min\": {:.1}, \"median\": {:.1}, \"max\": {:.1}}}}}{sep}",
            json_escape(id),
            lo * 1e9,
            mid * 1e9,
            hi * 1e9
        );
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("CRITERION_JSON: cannot write `{path}`: {e}");
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group function. Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups. CLI args from `cargo bench`
/// (e.g. `--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
