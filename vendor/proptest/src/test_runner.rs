//! Deterministic case runner plumbing: config, RNG, and case errors.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with message (test fails).
    Fail(String),
    /// `prop_assume!` rejected the inputs (case is skipped).
    Reject,
}

impl TestCaseError {
    /// Constructor mirroring `proptest::test_runner::TestCaseError::fail`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Constructor mirroring `TestCaseError::reject` (reason dropped).
    pub fn reject(_reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64: small, fast, and good enough for test-input generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Deterministic stream for (test, case).
    pub fn for_case(seed: u64, case: u64) -> Rng {
        Rng(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
