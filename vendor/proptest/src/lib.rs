//! A self-contained, offline reimplementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched; this shim keeps the property tests runnable. It supports
//! deterministic random generation (seeded per test/case, so failures
//! are reproducible) but performs **no shrinking**: a failing case is
//! reported with its generated inputs verbatim.
//!
//! Supported surface:
//! * `proptest!` blocks with an optional `#![proptest_config(...)]`
//!   inner attribute and `name in strategy` arguments,
//! * `Strategy` for integer/float ranges, `Just`, tuples, `&str`
//!   patterns of the form `.{lo,hi}` (arbitrary strings), `prop_oneof!`
//!   unions, and `proptest::collection::vec`,
//! * `any::<T>()` for primitives,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module alias).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declare property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident
        ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut case: u64 = 0;
                while passed < cfg.cases {
                    case += 1;
                    if case > (cfg.cases as u64).saturating_mul(64) {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} tried)",
                            stringify!($name), case
                        );
                    }
                    let mut rng = $crate::test_runner::Rng::for_case(
                        $crate::test_runner::seed_from_name(stringify!($name)),
                        case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "{} = {:?}; ", stringify!($arg), &$arg));)+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> $crate::test_runner::TestCaseResult {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => passed += 1,
                        Ok(Err($crate::test_runner::TestCaseError::Reject)) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name), case, msg, inputs
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest `{}` panicked at case {}\n  inputs: {}",
                                stringify!($name), case, inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure reports generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
