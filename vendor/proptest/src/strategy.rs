//! Value-generation strategies: the `Strategy` trait and the concrete
//! strategies the workspace's tests use.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::Rng;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut Rng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut Rng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.below(span.min(u64::MAX as u128) as u64) as i128))
                    as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.below(span.min(u64::MAX as u128) as u64) as i128)) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

/// `&str` strategies mirror proptest's regex strings for the one shape
/// the tests use — `.{lo,hi}` (an arbitrary string of bounded length).
/// Any other pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Mix ASCII (common), control chars, and multi-byte
                // code points so the lexer sees genuinely hostile input.
                let c = match rng.below(8) {
                    0 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\u{1}'),
                    1..=5 => (0x20u8 + rng.below(0x5F) as u8) as char,
                    6 => char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¿'),
                    _ => ['λ', '∷', '≔', '⟦', '⟧', '∞', '𝜋', '∀'][rng.below(8) as usize],
                };
                s.push(c);
            }
            s
        } else {
            (*self).to_string()
        }
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(40) as i32 - 20;
        m * (2f64).powi(e)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}
