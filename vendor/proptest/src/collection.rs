//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Strategy for a `Vec` with element strategy `S` and length in `lens`.
pub struct VecStrategy<S> {
    element: S,
    lens: Range<usize>,
}

/// A `Vec<S::Value>` with length drawn from `lens` (half-open).
pub fn vec<S: Strategy>(element: S, lens: Range<usize>) -> VecStrategy<S> {
    assert!(
        lens.start < lens.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, lens }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.lens.end - self.lens.start) as u64;
        let len = self.lens.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
