//! # hac — Haskell Array Comprehension compiler
//!
//! A from-scratch Rust reproduction of Steven Anderson and Paul Hudak,
//! *"Compilation of Haskell Array Comprehensions for Scientific
//! Computing"*, PLDI 1990: subscript analysis (GCD / Banerjee / exact
//! tests with direction vectors) adapted to functional monolithic
//! arrays, static thunkless scheduling, write-collision and empties
//! elision, and single-threaded in-place `bigupd` updates via node
//! splitting.
//!
//! This facade crate re-exports the full pipeline ([`hac_core`]) plus
//! the front end ([`hac_lang`]) and the paper's evaluation kernels
//! ([`hac_workloads`]). See `README.md` for a tour and `DESIGN.md` for
//! the system inventory.
//!
//! ```
//! use std::collections::HashMap;
//! use hac::core::compile_and_run;
//! use hac::lang::ConstEnv;
//!
//! let out = compile_and_run(
//!     hac::workloads::wavefront_source(),
//!     &ConstEnv::from_pairs([("n", 4)]),
//!     &HashMap::new(),
//! ).unwrap();
//! assert_eq!(out.array("a").get("a", &[4, 4]).unwrap(), 63.0);
//! ```

pub use hac_core as core;
pub use hac_lang as lang;
pub use hac_serve as serve;
pub use hac_workloads as workloads;
