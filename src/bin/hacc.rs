//! `hacc` — the command-line driver: compile a `.hac` program, explain
//! the analysis, and run it.
//!
//! ```text
//! hacc PROGRAM.hac [name=value ...] [options]
//!
//! options:
//!   --mode auto|thunked|checked   execution strategy (default auto)
//!   --engine treewalk|tape|partape  evaluation engine (default partape)
//!   --threads N                   ParTape worker count (default: all cores)
//!   --fill zero|random[:SEED]     how to fill `input` arrays (default random)
//!   --fuel N                      abort after N metered ops (loop iterations + calls)
//!   --mem-limit BYTES             cap bytes of array payload allocated
//!   --fault-plan SPEC             inject deterministic worker faults (testing)
//!   --no-run                      only explain, do not execute
//!   --quiet                       suppress the compilation report
//!   --print NAME                  print one array (repeatable; default: results)
//!   --emit limp                   print the generated loop IR per unit
//! ```
//!
//! Exit codes: 0 success, 1 usage or I/O error, 2 parse or compile
//! error, 3 runtime error, 4 resource limit exhausted.

use std::collections::HashMap;
use std::process::ExitCode;

use hac::core::pipeline::{
    compile, default_threads, run_with_options, CompileOptions, Engine, ExecMode, RunOptions, Unit,
};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::governor::{FaultPlan, Limits};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_runtime::RuntimeError;
use hac_workloads::XorShift;

struct Options {
    file: String,
    env: ConstEnv,
    mode: ExecMode,
    engine: Engine,
    threads: usize,
    limits: Limits,
    faults: Option<FaultPlan>,
    fill_random: bool,
    seed: u64,
    run_it: bool,
    quiet: bool,
    emit_limp: bool,
    print: Vec<String>,
}

fn usage() -> &'static str {
    "usage: hacc PROGRAM.hac [name=value ...] \
     [--mode auto|thunked|checked] [--engine treewalk|tape|partape] \
     [--threads N] [--fill zero|random[:SEED]] \
     [--fuel N] [--mem-limit BYTES] [--fault-plan SPEC] \
     [--no-run] [--quiet] [--print NAME]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        env: ConstEnv::new(),
        mode: ExecMode::Auto,
        // The CLI defaults to the parallel engine; the library default
        // stays `Engine::Tape` so embedders opt in explicitly.
        engine: Engine::ParTape,
        threads: default_threads(),
        limits: Limits::default(),
        faults: None,
        fill_random: true,
        seed: 0xC0FFEE,
        run_it: true,
        quiet: false,
        emit_limp: false,
        print: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let m = args.next().ok_or("--mode needs a value")?;
                opts.mode = match m.as_str() {
                    "auto" => ExecMode::Auto,
                    "thunked" => ExecMode::ForceThunked,
                    "checked" => ExecMode::ForceChecked,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--engine" => {
                let e = args.next().ok_or("--engine needs a value")?;
                opts.engine = match e.as_str() {
                    "treewalk" => Engine::TreeWalk,
                    "tape" => Engine::Tape,
                    "partape" => Engine::ParTape,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                opts.threads = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
            }
            "--fill" => {
                let f = args.next().ok_or("--fill needs a value")?;
                if f == "zero" {
                    opts.fill_random = false;
                } else if let Some(rest) = f.strip_prefix("random") {
                    opts.fill_random = true;
                    if let Some(seed) = rest.strip_prefix(':') {
                        opts.seed = seed.parse().map_err(|_| "bad seed")?;
                    }
                } else {
                    return Err(format!("unknown fill `{f}`"));
                }
            }
            "--fuel" => {
                let n = args.next().ok_or("--fuel needs a value")?;
                opts.limits.fuel = Some(
                    n.parse()
                        .map_err(|_| format!("--fuel needs a non-negative integer, got `{n}`"))?,
                );
            }
            "--mem-limit" => {
                let n = args.next().ok_or("--mem-limit needs a value")?;
                opts.limits.mem_bytes = Some(n.parse().map_err(|_| {
                    format!("--mem-limit needs a non-negative byte count, got `{n}`")
                })?);
            }
            "--fault-plan" => {
                let spec = args.next().ok_or("--fault-plan needs a value")?;
                opts.faults =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --fault-plan: {e}"))?);
            }
            "--no-run" => opts.run_it = false,
            "--quiet" => opts.quiet = true,
            "--emit" => {
                let what = args.next().ok_or("--emit needs a value")?;
                if what == "limp" {
                    opts.emit_limp = true;
                } else {
                    return Err(format!("unknown emit target `{what}`"));
                }
            }
            "--print" => opts.print.push(args.next().ok_or("--print needs a name")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.contains('=') => {
                let (name, value) = other.split_once('=').expect("checked");
                let v: i64 = value
                    .parse()
                    .map_err(|_| format!("parameter `{name}` needs an integer, got `{value}`"))?;
                opts.env.bind(name, v);
            }
            other if opts.file.is_empty() => opts.file = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn fill_inputs(
    compiled: &hac::core::pipeline::Compiled,
    opts: &Options,
) -> HashMap<String, ArrayBuf> {
    let mut rng = XorShift::new(opts.seed);
    let mut out = HashMap::new();
    for unit in &compiled.units {
        if let Unit::Input { name, bounds } = unit {
            let mut buf = ArrayBuf::new(bounds, 0.0);
            if opts.fill_random {
                for v in buf.data_mut() {
                    *v = (rng.next_f64() * 10.0).round() / 10.0;
                }
            }
            out.insert(name.clone(), buf);
        }
    }
    out
}

fn print_array(name: &str, buf: &ArrayBuf) {
    let bounds = buf.bounds();
    println!("array `{name}` bounds {bounds:?}:");
    match bounds.len() {
        1 => {
            let (lo, hi) = bounds[0];
            let vals: Vec<String> = (lo..=hi.min(lo + 19))
                .map(|i| format!("{:.4}", buf.get(name, &[i]).unwrap()))
                .collect();
            let ell = if hi - lo + 1 > 20 { " ..." } else { "" };
            println!("  [{}{}]", vals.join(", "), ell);
        }
        2 => {
            let (ilo, ihi) = bounds[0];
            let (jlo, jhi) = bounds[1];
            for i in ilo..=ihi.min(ilo + 9) {
                let row: Vec<String> = (jlo..=jhi.min(jlo + 9))
                    .map(|j| format!("{:>9.4}", buf.get(name, &[i, j]).unwrap()))
                    .collect();
                println!("  {}", row.join(" "));
            }
            if ihi - ilo + 1 > 10 || jhi - jlo + 1 > 10 {
                println!("  ... (truncated)");
            }
        }
        _ => println!("  ({} elements)", buf.len()),
    }
}

/// Distinct nonzero exit codes so callers can tell failure classes
/// apart without scraping stderr.
const EXIT_USAGE: u8 = 1;
const EXIT_COMPILE: u8 = 2;
const EXIT_RUNTIME: u8 = 3;
const EXIT_LIMIT: u8 = 4;

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    let compiled = match compile(
        &program,
        &opts.env,
        &CompileOptions {
            mode: opts.mode,
            engine: opts.engine,
            ..CompileOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    if !opts.quiet {
        print!("{}", compiled.report.render());
    }
    if opts.emit_limp {
        for unit in &compiled.units {
            match unit {
                Unit::Thunkless { name, prog, .. } => {
                    println!("--- limp for array `{name}` ---");
                    print!("{}", prog.render());
                }
                Unit::Update { name, lowered, .. } => {
                    println!(
                        "--- limp for update `{name}`{} ---",
                        if lowered.in_place { " (in place)" } else { "" }
                    );
                    print!("{}", lowered.prog.render());
                }
                _ => {}
            }
        }
    }
    if !opts.run_it {
        return ExitCode::SUCCESS;
    }
    let inputs = fill_inputs(&compiled, &opts);
    let run_opts = RunOptions {
        threads: Some(opts.threads),
        limits: opts.limits,
        faults: opts.faults.clone(),
    };
    let out = match run_with_options(&compiled, &inputs, &FuncTable::new(), &run_opts) {
        Ok(o) => o,
        Err(e @ (RuntimeError::FuelExhausted { .. } | RuntimeError::MemLimitExceeded { .. })) => {
            eprintln!("limit exceeded: {e}");
            return ExitCode::from(EXIT_LIMIT);
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            return ExitCode::from(EXIT_RUNTIME);
        }
    };
    let names: Vec<String> = if opts.print.is_empty() {
        program.result_names()
    } else {
        opts.print.clone()
    };
    for name in &names {
        if let Some(buf) = out.arrays.get(name) {
            print_array(name, buf);
        } else if let Some(v) = out.scalars.get(name) {
            println!("scalar `{name}` = {v}");
        } else {
            eprintln!("no array or scalar `{name}` in output");
        }
    }
    for (name, v) in &out.scalars {
        if !names.contains(name) {
            println!("scalar `{name}` = {v}");
        }
    }
    println!(
        "counters: {} stores, {} loads, {} checks, {} thunks, {} copies, {} temp elems",
        out.counters.vm.stores,
        out.counters.vm.loads,
        out.counters.vm.check_ops,
        out.counters.thunked.thunks_allocated,
        out.counters.vm.elements_copied,
        out.counters.vm.temp_elements
    );
    if out.counters.vm.engine_faults > 0 {
        println!(
            "engine faults: {} parallel region(s) recovered sequentially",
            out.counters.vm.engine_faults
        );
    }
    ExitCode::SUCCESS
}
