//! `hacc` — the command-line driver: compile a `.hac` program, explain
//! the analysis, and run it.
//!
//! ```text
//! hacc PROGRAM.hac [name=value ...] [options]
//!
//! options:
//!   --mode auto|thunked|checked   execution strategy (default auto)
//!   --engine treewalk|tape|partape  evaluation engine (default partape)
//!   --threads N                   ParTape worker count (default: all cores)
//!   --fill zero|random[:SEED]     how to fill `input` arrays (default random)
//!   --no-run                      only explain, do not execute
//!   --quiet                       suppress the compilation report
//!   --print NAME                  print one array (repeatable; default: results)
//!   --emit limp                   print the generated loop IR per unit
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use hac::core::pipeline::{
    compile, default_threads, run_with_threads, CompileOptions, Engine, ExecMode, Unit,
};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads::XorShift;

struct Options {
    file: String,
    env: ConstEnv,
    mode: ExecMode,
    engine: Engine,
    threads: usize,
    fill_random: bool,
    seed: u64,
    run_it: bool,
    quiet: bool,
    emit_limp: bool,
    print: Vec<String>,
}

fn usage() -> &'static str {
    "usage: hacc PROGRAM.hac [name=value ...] \
     [--mode auto|thunked|checked] [--engine treewalk|tape|partape] \
     [--threads N] [--fill zero|random[:SEED]] \
     [--no-run] [--quiet] [--print NAME]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        env: ConstEnv::new(),
        mode: ExecMode::Auto,
        // The CLI defaults to the parallel engine; the library default
        // stays `Engine::Tape` so embedders opt in explicitly.
        engine: Engine::ParTape,
        threads: default_threads(),
        fill_random: true,
        seed: 0xC0FFEE,
        run_it: true,
        quiet: false,
        emit_limp: false,
        print: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let m = args.next().ok_or("--mode needs a value")?;
                opts.mode = match m.as_str() {
                    "auto" => ExecMode::Auto,
                    "thunked" => ExecMode::ForceThunked,
                    "checked" => ExecMode::ForceChecked,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--engine" => {
                let e = args.next().ok_or("--engine needs a value")?;
                opts.engine = match e.as_str() {
                    "treewalk" => Engine::TreeWalk,
                    "tape" => Engine::Tape,
                    "partape" => Engine::ParTape,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                opts.threads = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
            }
            "--fill" => {
                let f = args.next().ok_or("--fill needs a value")?;
                if f == "zero" {
                    opts.fill_random = false;
                } else if let Some(rest) = f.strip_prefix("random") {
                    opts.fill_random = true;
                    if let Some(seed) = rest.strip_prefix(':') {
                        opts.seed = seed.parse().map_err(|_| "bad seed")?;
                    }
                } else {
                    return Err(format!("unknown fill `{f}`"));
                }
            }
            "--no-run" => opts.run_it = false,
            "--quiet" => opts.quiet = true,
            "--emit" => {
                let what = args.next().ok_or("--emit needs a value")?;
                if what == "limp" {
                    opts.emit_limp = true;
                } else {
                    return Err(format!("unknown emit target `{what}`"));
                }
            }
            "--print" => opts.print.push(args.next().ok_or("--print needs a name")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.contains('=') => {
                let (name, value) = other.split_once('=').expect("checked");
                let v: i64 = value
                    .parse()
                    .map_err(|_| format!("parameter `{name}` needs an integer, got `{value}`"))?;
                opts.env.bind(name, v);
            }
            other if opts.file.is_empty() => opts.file = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn fill_inputs(
    compiled: &hac::core::pipeline::Compiled,
    opts: &Options,
) -> HashMap<String, ArrayBuf> {
    let mut rng = XorShift::new(opts.seed);
    let mut out = HashMap::new();
    for unit in &compiled.units {
        if let Unit::Input { name, bounds } = unit {
            let mut buf = ArrayBuf::new(bounds, 0.0);
            if opts.fill_random {
                for v in buf.data_mut() {
                    *v = (rng.next_f64() * 10.0).round() / 10.0;
                }
            }
            out.insert(name.clone(), buf);
        }
    }
    out
}

fn print_array(name: &str, buf: &ArrayBuf) {
    let bounds = buf.bounds();
    println!("array `{name}` bounds {bounds:?}:");
    match bounds.len() {
        1 => {
            let (lo, hi) = bounds[0];
            let vals: Vec<String> = (lo..=hi.min(lo + 19))
                .map(|i| format!("{:.4}", buf.get(name, &[i]).unwrap()))
                .collect();
            let ell = if hi - lo + 1 > 20 { " ..." } else { "" };
            println!("  [{}{}]", vals.join(", "), ell);
        }
        2 => {
            let (ilo, ihi) = bounds[0];
            let (jlo, jhi) = bounds[1];
            for i in ilo..=ihi.min(ilo + 9) {
                let row: Vec<String> = (jlo..=jhi.min(jlo + 9))
                    .map(|j| format!("{:>9.4}", buf.get(name, &[i, j]).unwrap()))
                    .collect();
                println!("  {}", row.join(" "));
            }
            if ihi - ilo + 1 > 10 || jhi - jlo + 1 > 10 {
                println!("  ... (truncated)");
            }
        }
        _ => println!("  ({} elements)", buf.len()),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compile(
        &program,
        &opts.env,
        &CompileOptions {
            mode: opts.mode,
            engine: opts.engine,
            ..CompileOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !opts.quiet {
        print!("{}", compiled.report.render());
    }
    if opts.emit_limp {
        for unit in &compiled.units {
            match unit {
                Unit::Thunkless { name, prog, .. } => {
                    println!("--- limp for array `{name}` ---");
                    print!("{}", prog.render());
                }
                Unit::Update { name, lowered, .. } => {
                    println!(
                        "--- limp for update `{name}`{} ---",
                        if lowered.in_place { " (in place)" } else { "" }
                    );
                    print!("{}", lowered.prog.render());
                }
                _ => {}
            }
        }
    }
    if !opts.run_it {
        return ExitCode::SUCCESS;
    }
    let inputs = fill_inputs(&compiled, &opts);
    let out = match run_with_threads(&compiled, &inputs, &FuncTable::new(), opts.threads) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<String> = if opts.print.is_empty() {
        program.result_names()
    } else {
        opts.print.clone()
    };
    for name in &names {
        if let Some(buf) = out.arrays.get(name) {
            print_array(name, buf);
        } else if let Some(v) = out.scalars.get(name) {
            println!("scalar `{name}` = {v}");
        } else {
            eprintln!("no array or scalar `{name}` in output");
        }
    }
    for (name, v) in &out.scalars {
        if !names.contains(name) {
            println!("scalar `{name}` = {v}");
        }
    }
    println!(
        "counters: {} stores, {} loads, {} checks, {} thunks, {} copies, {} temp elems",
        out.counters.vm.stores,
        out.counters.vm.loads,
        out.counters.vm.check_ops,
        out.counters.thunked.thunks_allocated,
        out.counters.vm.elements_copied,
        out.counters.vm.temp_elements
    );
    ExitCode::SUCCESS
}
