//! `hacc` — the command-line driver: compile a `.hac` program, explain
//! the analysis, and run it.
//!
//! ```text
//! hacc PROGRAM.hac [name=value ...] [options]
//! hacc batch JOBS.json [serve options]    run a batch of requests
//! hacc serve [serve options]              JSON-lines requests on stdin
//! hacc daemon --listen ADDR [serve options]  persistent TCP daemon
//!
//! options:
//!   --mode auto|thunked|checked   execution strategy (default auto)
//!   --engine treewalk|tape|partape  evaluation engine (default partape)
//!   --threads N                   ParTape worker count (default: all cores)
//!   --fill zero|random[:SEED]     how to fill `input` arrays (default random)
//!   --fuel N                      abort after N metered ops (loop iterations + calls)
//!   --mem-limit BYTES             cap bytes of array payload allocated
//!   --deadline-ms N               convert a deadline to fuel before running
//!   --fault-plan SPEC             inject deterministic worker faults (testing)
//!   --no-run                      only explain, do not execute
//!   --no-fuse                     disable vector-kernel fusion of parallel
//!                                 affine loops (scalar tape dispatch)
//!   --quiet                       suppress the compilation report
//!   --print NAME                  print one array (repeatable; default: results)
//!   --emit limp                   print the generated loop IR per unit
//!
//! serve options:
//!   --workers N                   concurrent requests (default: all cores)
//!   --threads N                   ParTape workers within one request (default 1)
//!   --ceiling-fuel N              global fuel pool shared by all requests
//!   --ceiling-mem BYTES           global memory pool
//!   --stripes N                   ceiling stripe count (default 8)
//!   --cache-cap N                 compiled-program cache entries (default 256;
//!                                 0 = unbounded)
//!   --result-cache-cap N          materialized-result cache entries — memoized
//!                                 outcomes plus `bigupd` family snapshots for
//!                                 delta recomputation (default 256;
//!                                 0 = caching off)
//!   --no-fuse                     compile request programs without the
//!                                 vector-fusion pass (scalar tape dispatch)
//!   --ops-per-ms N                inject the deadline rate (skip calibration)
//!   --engine / --mode             defaults for requests that don't pick
//!   --shed-watermark N            batch queue depth past which the lowest-
//!                                 share tenant's newest arrivals are shed
//!                                 with `overloaded` + a `retry_after_ops`
//!                                 hint (default 0 = never shed)
//!   --retry-budget N              extra attempts granted on an unabsorbed
//!                                 engine fault (default 1)
//!
//! daemon options (besides the serve options):
//!   --listen ADDR                 address to bind, e.g. 127.0.0.1:7070
//!                                 (port 0 picks a free port; the bound
//!                                 address is printed on stdout)
//!   --max-conns N                 concurrent connections (default 8)
//!   --io-timeout-ms N             per-connection read/write deadline
//!                                 (default: none)
//!   --max-line-bytes N            request-line byte cap (default 1 MiB)
//!   --chaos-plan SPEC             deterministic I/O fault plan, e.g.
//!                                 `c1:drop,c2r1:garbage` (or the
//!                                 HAC_CHAOS_PLAN environment variable);
//!                                 engine tokens like `r0c0:panic` ride in
//!                                 the same spec
//! ```
//!
//! Requests carry optional `tenant` and `weight` fields: `hacc batch`
//! admits in the weighted fair (stride) order across tenants, and a
//! daemon connection can attribute its requests to a tenant with
//! `{"control":"tenant","tenant":"acme"}`. `{"control":"shutdown"}`
//! stops the daemon gracefully; `{"control":"stats"}` reports cache
//! counters and per-tenant request totals.
//!
//! Deadlines never reach the engines as clocks: `--deadline-ms` (and a
//! request's `deadline_ms`) is multiplied into a fuel budget by a
//! `DeadlineGovernor` calibrated once at startup — injectable via
//! `--ops-per-ms` or the `HAC_OPS_PER_MS` environment variable for
//! reproducible runs.
//!
//! Exit codes: 0 success, 1 usage or I/O error, 2 parse or compile
//! error, 3 runtime error, 4 resource limit exhausted. `batch` and
//! `serve` report per-request statuses in their JSON output and exit 0
//! whenever the batch itself was processed.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

use hac::core::deadline::DeadlineGovernor;
use hac::core::pipeline::{
    compile, default_threads, run_with_options, CompileOptions, Engine, ExecMode, RunOptions, Unit,
};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac::serve::{engine_from_str, json, mode_from_str, Request, ServeOptions, Server};
use hac_runtime::governor::{FaultPlan, Limits};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_runtime::RuntimeError;
use hac_workloads::XorShift;

struct Options {
    file: String,
    env: ConstEnv,
    mode: ExecMode,
    engine: Engine,
    threads: usize,
    limits: Limits,
    deadline_ms: Option<u64>,
    ops_per_ms: Option<u64>,
    faults: Option<FaultPlan>,
    fill_random: bool,
    seed: u64,
    run_it: bool,
    quiet: bool,
    fuse: bool,
    emit_limp: bool,
    print: Vec<String>,
}

fn usage() -> &'static str {
    "usage: hacc PROGRAM.hac [name=value ...] \
     [--mode auto|thunked|checked] [--engine treewalk|tape|partape] \
     [--threads N] [--fill zero|random[:SEED]] \
     [--fuel N] [--mem-limit BYTES] [--deadline-ms N] [--fault-plan SPEC] \
     [--no-run] [--no-fuse] [--quiet] [--print NAME]\n\
     \x20      hacc batch JOBS.json [--workers N] [--threads N] \
     [--ceiling-fuel N] [--ceiling-mem BYTES] [--stripes N] [--cache-cap N] \
     [--result-cache-cap N] [--no-fuse] [--ops-per-ms N]\n\
     [--shed-watermark N] [--retry-budget N]\n\
     \x20      hacc serve [same options as batch]\n\
     \x20      hacc daemon --listen ADDR [--max-conns N] [--io-timeout-ms N] \
     [--max-line-bytes N] [--chaos-plan SPEC] [same options as batch]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        env: ConstEnv::new(),
        mode: ExecMode::Auto,
        // The CLI defaults to the parallel engine; the library default
        // stays `Engine::Tape` so embedders opt in explicitly.
        engine: Engine::ParTape,
        threads: default_threads(),
        limits: Limits::default(),
        deadline_ms: None,
        ops_per_ms: None,
        faults: None,
        fill_random: true,
        seed: 0xC0FFEE,
        run_it: true,
        quiet: false,
        fuse: true,
        emit_limp: false,
        print: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let m = args.next().ok_or("--mode needs a value")?;
                opts.mode = match m.as_str() {
                    "auto" => ExecMode::Auto,
                    "thunked" => ExecMode::ForceThunked,
                    "checked" => ExecMode::ForceChecked,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--engine" => {
                let e = args.next().ok_or("--engine needs a value")?;
                opts.engine = match e.as_str() {
                    "treewalk" => Engine::TreeWalk,
                    "tape" => Engine::Tape,
                    "partape" => Engine::ParTape,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                opts.threads = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
            }
            "--fill" => {
                let f = args.next().ok_or("--fill needs a value")?;
                if f == "zero" {
                    opts.fill_random = false;
                } else if let Some(rest) = f.strip_prefix("random") {
                    opts.fill_random = true;
                    if let Some(seed) = rest.strip_prefix(':') {
                        opts.seed = seed.parse().map_err(|_| "bad seed")?;
                    }
                } else {
                    return Err(format!("unknown fill `{f}`"));
                }
            }
            "--fuel" => {
                let n = args.next().ok_or("--fuel needs a value")?;
                opts.limits.fuel = Some(
                    n.parse()
                        .map_err(|_| format!("--fuel needs a non-negative integer, got `{n}`"))?,
                );
            }
            "--mem-limit" => {
                let n = args.next().ok_or("--mem-limit needs a value")?;
                opts.limits.mem_bytes = Some(n.parse().map_err(|_| {
                    format!("--mem-limit needs a non-negative byte count, got `{n}`")
                })?);
            }
            "--deadline-ms" => {
                let n = args.next().ok_or("--deadline-ms needs a value")?;
                opts.deadline_ms = Some(n.parse().map_err(|_| {
                    format!("--deadline-ms needs a non-negative integer, got `{n}`")
                })?);
            }
            "--ops-per-ms" => {
                let n = args.next().ok_or("--ops-per-ms needs a value")?;
                opts.ops_per_ms =
                    Some(n.parse().map_err(|_| {
                        format!("--ops-per-ms needs a positive integer, got `{n}`")
                    })?);
            }
            "--fault-plan" => {
                let spec = args.next().ok_or("--fault-plan needs a value")?;
                opts.faults =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --fault-plan: {e}"))?);
            }
            "--no-run" => opts.run_it = false,
            "--no-fuse" => opts.fuse = false,
            "--quiet" => opts.quiet = true,
            "--emit" => {
                let what = args.next().ok_or("--emit needs a value")?;
                if what == "limp" {
                    opts.emit_limp = true;
                } else {
                    return Err(format!("unknown emit target `{what}`"));
                }
            }
            "--print" => opts.print.push(args.next().ok_or("--print needs a name")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.contains('=') => {
                let (name, value) = other.split_once('=').expect("checked");
                let v: i64 = value
                    .parse()
                    .map_err(|_| format!("parameter `{name}` needs an integer, got `{value}`"))?;
                opts.env.bind(name, v);
            }
            other if opts.file.is_empty() => opts.file = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn fill_inputs(
    compiled: &hac::core::pipeline::Compiled,
    opts: &Options,
) -> HashMap<String, ArrayBuf> {
    let mut rng = XorShift::new(opts.seed);
    let mut out = HashMap::new();
    for unit in &compiled.units {
        if let Unit::Input { name, bounds } = unit {
            let mut buf = ArrayBuf::new(bounds, 0.0);
            if opts.fill_random {
                for v in buf.data_mut() {
                    *v = (rng.next_f64() * 10.0).round() / 10.0;
                }
            }
            out.insert(name.clone(), buf);
        }
    }
    out
}

fn print_array(name: &str, buf: &ArrayBuf) {
    let bounds = buf.bounds();
    println!("array `{name}` bounds {bounds:?}:");
    match bounds.len() {
        1 => {
            let (lo, hi) = bounds[0];
            let vals: Vec<String> = (lo..=hi.min(lo + 19))
                .map(|i| format!("{:.4}", buf.get(name, &[i]).unwrap()))
                .collect();
            let ell = if hi - lo + 1 > 20 { " ..." } else { "" };
            println!("  [{}{}]", vals.join(", "), ell);
        }
        2 => {
            let (ilo, ihi) = bounds[0];
            let (jlo, jhi) = bounds[1];
            for i in ilo..=ihi.min(ilo + 9) {
                let row: Vec<String> = (jlo..=jhi.min(jlo + 9))
                    .map(|j| format!("{:>9.4}", buf.get(name, &[i, j]).unwrap()))
                    .collect();
                println!("  {}", row.join(" "));
            }
            if ihi - ilo + 1 > 10 || jhi - jlo + 1 > 10 {
                println!("  ... (truncated)");
            }
        }
        _ => println!("  ({} elements)", buf.len()),
    }
}

/// Distinct nonzero exit codes so callers can tell failure classes
/// apart without scraping stderr.
const EXIT_USAGE: u8 = 1;
const EXIT_COMPILE: u8 = 2;
const EXIT_RUNTIME: u8 = 3;
const EXIT_LIMIT: u8 = 4;

/// The deadline governor: injected rate (flag, then environment) or a
/// one-shot calibration run.
fn deadline_governor(ops_per_ms: Option<u64>) -> DeadlineGovernor {
    if let Some(rate) = ops_per_ms {
        return DeadlineGovernor::with_rate(rate);
    }
    if let Ok(v) = std::env::var("HAC_OPS_PER_MS") {
        if let Ok(rate) = v.parse::<u64>() {
            return DeadlineGovernor::with_rate(rate);
        }
    }
    DeadlineGovernor::calibrate()
}

/// Serving-layer options shared by `hacc batch`, `hacc serve`, and
/// `hacc daemon`.
struct ServeCli {
    options: ServeOptions,
    workers: usize,
    /// Positional argument: the jobs file for `batch`.
    jobs_file: Option<String>,
    /// `--listen` address for `daemon`.
    listen: Option<String>,
    /// `--max-conns` for `daemon`.
    max_conns: usize,
    /// `--io-timeout-ms` for `daemon`.
    io_timeout_ms: Option<u64>,
    /// `--max-line-bytes` for `daemon`.
    max_line_bytes: usize,
    /// `--chaos-plan` for `daemon` (the flag form; the
    /// `HAC_CHAOS_PLAN` environment variable is the fallback).
    chaos_plan: Option<String>,
}

fn parse_serve_args(mut args: std::env::Args) -> Result<ServeCli, String> {
    let mut engine = Engine::ParTape;
    let mut mode = ExecMode::Auto;
    let mut threads = 1usize;
    let mut workers = default_threads();
    let mut ceiling = Limits::default();
    let mut stripes = 8usize;
    let mut cache_cap = hac::serve::DEFAULT_CACHE_CAP;
    let mut result_cache_cap = hac::serve::DEFAULT_RESULT_CACHE_CAP;
    let mut fuse = true;
    let mut ops_per_ms: Option<u64> = None;
    let mut need_deadline = false;
    let mut jobs_file = None;
    let mut listen = None;
    let mut max_conns = 8usize;
    let mut shed_watermark = 0usize;
    let mut retry_budget = hac::serve::DEFAULT_RETRY_BUDGET;
    let mut io_timeout_ms = None;
    let mut max_line_bytes = hac::serve::daemon::DEFAULT_MAX_LINE_BYTES;
    let mut chaos_plan = None;
    while let Some(arg) = args.next() {
        let mut uint = |flag: &str| -> Result<u64, String> {
            let n = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
            n.parse()
                .map_err(|_| format!("{flag} needs a non-negative integer, got `{n}`"))
        };
        match arg.as_str() {
            "--engine" => {
                let e = args.next().ok_or("--engine needs a value")?;
                engine = engine_from_str(&e)?;
            }
            "--mode" => {
                let m = args.next().ok_or("--mode needs a value")?;
                mode = mode_from_str(&m)?;
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                threads = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a value")?;
                workers = n
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{n}`"))?;
            }
            "--ceiling-fuel" => ceiling.fuel = Some(uint("--ceiling-fuel")?),
            "--ceiling-mem" => ceiling.mem_bytes = Some(uint("--ceiling-mem")?),
            "--stripes" => stripes = uint("--stripes")?.max(1) as usize,
            "--cache-cap" => cache_cap = uint("--cache-cap")? as usize,
            "--result-cache-cap" => result_cache_cap = uint("--result-cache-cap")? as usize,
            "--no-fuse" => fuse = false,
            "--ops-per-ms" => ops_per_ms = Some(uint("--ops-per-ms")?),
            "--deadlines" => need_deadline = true,
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--max-conns" => max_conns = uint("--max-conns")?.max(1) as usize,
            "--shed-watermark" => shed_watermark = uint("--shed-watermark")? as usize,
            "--retry-budget" => {
                retry_budget = u32::try_from(uint("--retry-budget")?)
                    .map_err(|_| "--retry-budget is too large".to_string())?;
            }
            "--io-timeout-ms" => io_timeout_ms = Some(uint("--io-timeout-ms")?.max(1)),
            "--max-line-bytes" => {
                max_line_bytes = uint("--max-line-bytes")?.max(1) as usize;
            }
            "--chaos-plan" => {
                chaos_plan = Some(args.next().ok_or("--chaos-plan needs a spec")?);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if jobs_file.is_none() && !other.starts_with("--") => {
                jobs_file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    // A governor is built whenever the rate is known without a clock
    // read; calibration is deferred to first use otherwise (requests
    // without deadlines shouldn't pay for it — `--deadlines` forces
    // it at startup).
    let deadline = if ops_per_ms.is_some() || std::env::var("HAC_OPS_PER_MS").is_ok() {
        Some(deadline_governor(ops_per_ms))
    } else if need_deadline {
        Some(DeadlineGovernor::calibrate())
    } else {
        None
    };
    Ok(ServeCli {
        options: ServeOptions {
            engine,
            mode,
            threads,
            ceiling,
            stripes,
            deadline,
            cache_cap,
            shed_watermark,
            retry_budget,
            faults: None,
            result_cache_cap,
            fuse,
        },
        workers,
        jobs_file,
        listen,
        max_conns,
        io_timeout_ms,
        max_line_bytes,
        chaos_plan,
    })
}

/// Resolve one request object: a `file` key is read here (the serve
/// library only understands inline `source`).
fn resolve_request(v: &json::Json) -> Result<Request, String> {
    let v = match (v.get("file"), v.get("source")) {
        (Some(f), None) => {
            let path = f.as_str().ok_or("`file` must be a string")?;
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let json::Json::Obj(fields) = v else {
                return Err("request must be an object".to_string());
            };
            let mut fields = fields.clone();
            fields.retain(|(k, _)| k != "file");
            fields.push(("source".to_string(), json::Json::Str(source)));
            json::Json::Obj(fields)
        }
        _ => v.clone(),
    };
    Request::from_json(&v)
}

fn batch_main(cli: ServeCli) -> ExitCode {
    let Some(jobs_file) = cli.jobs_file.clone() else {
        eprintln!("batch needs a JOBS.json argument");
        return ExitCode::from(EXIT_USAGE);
    };
    let text = match std::fs::read_to_string(&jobs_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{jobs_file}`: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let parsed = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad jobs file: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Either a bare array of requests or {"jobs": [...]}.
    let jobs = parsed
        .get("jobs")
        .and_then(json::Json::as_arr)
        .or_else(|| parsed.as_arr());
    let Some(jobs) = jobs else {
        eprintln!("jobs file must be an array of requests or {{\"jobs\": [...]}}");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut reqs = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match resolve_request(job) {
            Ok(r) => reqs.push(r),
            Err(e) => {
                eprintln!("job {i}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let server = Server::new(cli.options);
    let mut responses = server.run_batch(&reqs, cli.workers);
    // Honor `retry_after_ops`: an overloaded response asks the client
    // to come back once the admitted backlog's fuel has drained, and
    // `run_batch` returns only after that backlog completed — so one
    // immediate resubmission of the shed requests honors the hint
    // exactly (no clock involved). Requests shed twice stay
    // overloaded: the queue is genuinely past capacity.
    let shed: Vec<usize> = (0..responses.len())
        .filter(|&i| responses[i].status == hac::serve::Status::Overloaded)
        .collect();
    if !shed.is_empty() {
        let hint = responses[shed[0]].retry_after_ops.unwrap_or(0);
        eprintln!(
            "batch: {} overloaded response(s), resubmitting after a backlog of {} op(s)",
            shed.len(),
            hint,
        );
        let again: Vec<Request> = shed.iter().map(|&i| reqs[i].clone()).collect();
        let retried = server.run_batch(&again, cli.workers);
        for (resp, &i) in retried.into_iter().zip(&shed) {
            responses[i] = resp;
        }
    }
    let out = json::Json::Arr(responses.iter().map(|r| r.to_json()).collect());
    println!("{out}");
    let stats = server.cache_stats();
    let sv = server.server_stats();
    eprintln!(
        "batch: {} request(s), cache {} hit(s) / {} miss(es) / {} eviction(s), {} live of cap {}, \
         {} shed, {} retried",
        responses.len(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.live,
        stats.cap,
        sv.shed,
        sv.retried,
    );
    ExitCode::SUCCESS
}

fn daemon_main(mut cli: ServeCli) -> ExitCode {
    let Some(listen) = cli.listen.clone() else {
        eprintln!("daemon needs --listen ADDR (e.g. --listen 127.0.0.1:7070)");
        return ExitCode::from(EXIT_USAGE);
    };
    // `--chaos-plan` wins over the environment; either way the plan's
    // engine-level tokens are routed to the server so one spec faults
    // both the sockets and the engines.
    let chaos_spec = cli
        .chaos_plan
        .clone()
        .or_else(|| std::env::var("HAC_CHAOS_PLAN").ok());
    let chaos = match chaos_spec
        .as_deref()
        .map(hac::serve::chaos::ChaosPlan::parse)
    {
        None => None,
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => {
            eprintln!("bad chaos plan: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Some(plan) = &chaos {
        if !plan.engine.points.is_empty() || !plan.engine.snapshot {
            cli.options.faults = Some(plan.engine.clone());
        }
    }
    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind `{listen}`: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // The one line clients (and the CI smoke) parse to find the port —
    // printed before the first accept so a scripted parent can connect
    // as soon as it sees it.
    println!("daemon listening on {addr}");
    let _ = std::io::stdout().flush();
    let server = std::sync::Arc::new(Server::new(cli.options));
    let opts = hac::serve::daemon::DaemonOptions {
        max_conns: cli.max_conns,
        io_timeout_ms: cli.io_timeout_ms,
        max_line_bytes: cli.max_line_bytes,
        chaos,
    };
    match hac::serve::daemon::run(server, listener, opts) {
        Ok(()) => {
            eprintln!("daemon: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("daemon error: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn serve_main(cli: ServeCli) -> ExitCode {
    let server = Server::new(cli.options);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match json::parse(&line).and_then(|v| resolve_request(&v)) {
            Ok(req) => server.handle(&req),
            Err(e) => {
                // The same structured shape the daemon's armor uses:
                // a stable code in `error`, specifics in `detail`.
                let err = json::Json::Obj(vec![
                    ("id".to_string(), json::Json::Null),
                    (
                        "status".to_string(),
                        json::Json::Str("rejected".to_string()),
                    ),
                    (
                        "error".to_string(),
                        json::Json::Str("bad-request".to_string()),
                    ),
                    ("detail".to_string(), json::Json::Str(e)),
                ]);
                let _ = writeln!(stdout, "{err}");
                let _ = stdout.flush();
                continue;
            }
        };
        let _ = writeln!(stdout, "{}", response.to_json());
        let _ = stdout.flush();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Subcommand dispatch: `hacc serve` / `hacc batch` take their own
    // flags; everything else is the classic single-program driver.
    let mut peek = std::env::args();
    peek.next(); // argv[0]
    if let Some(sub @ ("serve" | "batch" | "daemon")) = peek.next().as_deref() {
        let sub = sub.to_string();
        let mut args = std::env::args();
        args.next();
        args.next();
        let cli = match parse_serve_args(args) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        return match sub.as_str() {
            "batch" => batch_main(cli),
            "daemon" => daemon_main(cli),
            _ => serve_main(cli),
        };
    }
    let mut opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Convert a wall-clock deadline into fuel *before* execution: the
    // engines never read the clock, so the run stays deterministic for
    // a given rate (inject `--ops-per-ms` / `HAC_OPS_PER_MS` to pin it).
    if let Some(ms) = opts.deadline_ms {
        let budget = deadline_governor(opts.ops_per_ms).fuel_for_deadline(ms);
        opts.limits.fuel = Some(opts.limits.fuel.map_or(budget, |f| f.min(budget)));
    }
    let opts = opts;
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", opts.file);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    let compiled = match compile(
        &program,
        &opts.env,
        &CompileOptions {
            mode: opts.mode,
            engine: opts.engine,
            fuse: opts.fuse,
            ..CompileOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    if !opts.quiet {
        print!("{}", compiled.report.render());
    }
    if opts.emit_limp {
        for unit in &compiled.units {
            match unit {
                Unit::Thunkless { name, prog, .. } => {
                    println!("--- limp for array `{name}` ---");
                    print!("{}", prog.render());
                }
                Unit::Update { name, lowered, .. } => {
                    println!(
                        "--- limp for update `{name}`{} ---",
                        if lowered.in_place { " (in place)" } else { "" }
                    );
                    print!("{}", lowered.prog.render());
                }
                _ => {}
            }
        }
    }
    if !opts.run_it {
        return ExitCode::SUCCESS;
    }
    let inputs = fill_inputs(&compiled, &opts);
    let run_opts = RunOptions {
        threads: Some(opts.threads),
        limits: opts.limits,
        faults: opts.faults.clone(),
        ceiling: None,
    };
    let out = match run_with_options(&compiled, &inputs, &FuncTable::new(), &run_opts) {
        Ok(o) => o,
        Err(
            e @ (RuntimeError::FuelExhausted { .. }
            | RuntimeError::MemLimitExceeded { .. }
            | RuntimeError::CeilingExhausted { .. }),
        ) => {
            eprintln!("limit exceeded: {e}");
            return ExitCode::from(EXIT_LIMIT);
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            return ExitCode::from(EXIT_RUNTIME);
        }
    };
    let names: Vec<String> = if opts.print.is_empty() {
        program.result_names()
    } else {
        opts.print.clone()
    };
    for name in &names {
        if let Some(buf) = out.arrays.get(name) {
            print_array(name, buf);
        } else if let Some(v) = out.scalars.get(name) {
            println!("scalar `{name}` = {v}");
        } else {
            eprintln!("no array or scalar `{name}` in output");
        }
    }
    for (name, v) in &out.scalars {
        if !names.contains(name) {
            println!("scalar `{name}` = {v}");
        }
    }
    println!(
        "counters: {} stores, {} loads, {} checks, {} thunks, {} copies, {} temp elems",
        out.counters.vm.stores,
        out.counters.vm.loads,
        out.counters.vm.check_ops,
        out.counters.thunked.thunks_allocated,
        out.counters.vm.elements_copied,
        out.counters.vm.temp_elements
    );
    if out.counters.vm.engine_faults > 0 {
        println!(
            "engine faults: {} parallel region(s) recovered sequentially",
            out.counters.vm.engine_faults
        );
    }
    ExitCode::SUCCESS
}
