//! Iterative relaxation of the Laplace equation on a heated plate,
//! comparing the paper's §9 update strategies:
//!
//! * **Jacobi** steps (`bigupd` reading only old values) — the compiler
//!   breaks the anti-dependence cycles by node splitting and runs each
//!   sweep in place with O(n) carry buffers;
//! * **Gauss–Seidel** steps (new north/west neighbors) — scheduled
//!   fully in place with zero temporaries, and converging faster.
//!
//! ```sh
//! cargo run --example relaxation
//! ```

use std::collections::HashMap;

use hac::core::pipeline::{compile, run, CompileOptions, Compiled};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::value::{ArrayBuf, FuncTable};

fn plate(n: i64) -> ArrayBuf {
    // Hot top edge (100°), cold elsewhere.
    hac::workloads::matrix(n, n, |i, _| if i == 1 { 100.0 } else { 0.0 })
}

fn sweep(compiled: &Compiled, a: &ArrayBuf) -> (ArrayBuf, hac::core::pipeline::ExecCounters) {
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    let out = run(compiled, &inputs, &FuncTable::new()).expect("sweep");
    (out.array("b").clone(), out.counters)
}

fn residual(a: &ArrayBuf, b: &ArrayBuf) -> f64 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let env = ConstEnv::from_pairs([("n", n)]);
    let jacobi = compile(
        &parse_program(hac::workloads::jacobi_source())?,
        &env,
        &CompileOptions::default(),
    )?;
    let sor = compile(
        &parse_program(hac::workloads::sor_source())?,
        &env,
        &CompileOptions::default(),
    )?;

    for u in &jacobi.report.updates {
        println!("jacobi strategy: {}", u.strategy);
    }
    for u in &sor.report.updates {
        println!("gauss-seidel strategy: {}", u.strategy);
    }
    println!();

    let tol = 1e-3;
    let mut table = Vec::new();
    for (name, compiled) in [("jacobi", &jacobi), ("gauss-seidel", &sor)] {
        let mut a = plate(n);
        let mut iters = 0u64;
        #[allow(unused_assignments)]
        let (mut temps, mut copies) = (0u64, 0u64);
        loop {
            let (b, counters) = sweep(compiled, &a);
            temps = counters.vm.temp_elements;
            copies = counters.vm.elements_copied;
            iters += 1;
            let r = residual(&a, &b);
            a = b;
            if r < tol || iters > 10_000 {
                break;
            }
        }
        let center = a.get("a", &[n / 2, n / 2]).unwrap();
        table.push((name, iters, center, temps, copies));
    }

    println!(
        "{:<14} {:>8} {:>12} {:>16} {:>14}",
        "method", "sweeps", "center T", "temp elems/sweep", "copies/sweep"
    );
    for (name, iters, center, temps, copies) in &table {
        println!("{name:<14} {iters:>8} {center:>12.4} {temps:>16} {copies:>14}");
    }
    println!("\nGauss–Seidel converges in fewer sweeps and needs no temporaries;");
    println!("Jacobi's node splitting costs only O(n) buffer elements per sweep —");
    println!("never a whole-array copy.");
    Ok(())
}
