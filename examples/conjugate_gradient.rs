//! Conjugate gradients on a tridiagonal SPD system, with every
//! per-iteration kernel — the matrix–vector product, both dot products
//! (§3.1 reductions), and the vector updates — written in the array
//! language, compiled once, and run each iteration.
//!
//! The solution is checked against the Thomas-algorithm oracle from
//! `hac-workloads`.
//!
//! ```sh
//! cargo run --example conjugate_gradient
//! ```

use std::collections::HashMap;

use hac::core::pipeline::{compile, run, CompileOptions};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::value::{ArrayBuf, FuncTable};

/// One CG iteration over the system `A = tridiag(1, 4, 1)`:
/// given p, r, x it produces xn, rn, pn and the residual norm rr2.
const STEP: &str = r#"
param n;
input p (1,n);
input r (1,n);
input x (1,n);
let q = array (1,n)
   [ i := (if i > 1 then p!(i-1) else 0) + 4 * p!i
        + (if i < n then p!(i+1) else 0) | i <- [1..n] ];
let rr = sum [ r!k * r!k | k <- [1..n] ];
let pq = sum [ p!k * q!k | k <- [1..n] ];
let xn = array (1,n) [ i := x!i + (rr / pq) * p!i | i <- [1..n] ];
let rn = array (1,n) [ i := r!i - (rr / pq) * q!i | i <- [1..n] ];
let rr2 = sum [ rn!k * rn!k | k <- [1..n] ];
let pn = array (1,n) [ i := rn!i + (rr2 / rr) * p!i | i <- [1..n] ];
result xn, rn, pn;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64i64;
    let env = ConstEnv::from_pairs([("n", n)]);
    let program = parse_program(STEP)?;
    let compiled = compile(&program, &env, &CompileOptions::default())?;
    println!("per-iteration kernels (compiled once):");
    for a in &compiled.report.arrays {
        let first = a.outcome.lines().next().unwrap_or("");
        println!("  array `{}`: {first}", a.name);
    }
    for r in &compiled.report.reductions {
        println!("  {r}");
    }

    // b = the right-hand side; start from x = 0, r = p = b.
    let b = hac::workloads::random_vector(n, 2026);
    let zero = ArrayBuf::new(&[(1, n)], 0.0);
    let mut x = zero.clone();
    let mut r = b.clone();
    let mut p = b.clone();

    let funcs = FuncTable::new();
    let mut iters = 0;
    let rr2 = loop {
        let mut inputs = HashMap::new();
        inputs.insert("p".to_string(), p.clone());
        inputs.insert("r".to_string(), r.clone());
        inputs.insert("x".to_string(), x.clone());
        let out = run(&compiled, &inputs, &funcs)?;
        x = out.array("xn").clone();
        r = out.array("rn").clone();
        p = out.array("pn").clone();
        iters += 1;
        let rr2 = out.scalar("rr2");
        if rr2 < 1e-20 || iters >= 2 * n {
            break rr2;
        }
    };
    println!("\nconverged in {iters} iterations, ‖r‖² = {rr2:.3e}");

    // Check against the direct Thomas solve.
    let exact = hac::workloads::thomas_oracle(&b, n);
    let mut max_err: f64 = 0.0;
    for i in 1..=n {
        let e = (x.get("x", &[i])? - exact.get("x", &[i])?).abs();
        max_err = max_err.max(e);
    }
    println!("max |x_cg − x_thomas| = {max_err:.3e}");
    assert!(max_err < 1e-8, "CG must agree with the direct solve");
    println!("matches the Thomas-algorithm direct solve ✓");
    Ok(())
}
