//! Quickstart: compile and run the paper's §3 wavefront recurrence,
//! and print the compiler's explanation of what the subscript analysis
//! proved and how the loops were scheduled.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::collections::HashMap;

use hac::core::pipeline::{compile, run, CompileOptions};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::value::FuncTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let source = hac::workloads::wavefront_source();
    println!("source:\n{source}");

    let program = parse_program(source)?;
    let env = ConstEnv::from_pairs([("n", n)]);
    let compiled = compile(&program, &env, &CompileOptions::default())?;

    println!("=== compilation report (n = {n}) ===");
    println!("{}", compiled.report.render());

    let out = run(&compiled, &HashMap::new(), &FuncTable::new())?;
    let a = out.array("a");
    println!("=== result (Delannoy numbers) ===");
    for i in 1..=n {
        let row: Vec<String> = (1..=n)
            .map(|j| format!("{:>6}", a.get("a", &[i, j]).unwrap()))
            .collect();
        println!("{}", row.join(" "));
    }

    println!("\n=== runtime work ===");
    println!("stores:            {}", out.counters.vm.stores);
    println!("loads:             {}", out.counters.vm.loads);
    println!("runtime checks:    {}", out.counters.vm.check_ops);
    println!(
        "thunks allocated:  {}",
        out.counters.thunked.thunks_allocated
    );
    println!("(the analysis proved collisions and empties impossible, so");
    println!(" the array is computed with raw stores — no thunks, no checks)");
    Ok(())
}
