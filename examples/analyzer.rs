//! A dependence-analysis explainer: feed it a `hac` program (a file
//! path plus `name=value` parameter bindings, or nothing for a built-in
//! tour) and it prints the dependence graph, the §4/§7 verdicts, and
//! the schedule — the compiler's reasoning, in the paper's vocabulary.
//!
//! ```sh
//! cargo run --example analyzer                      # built-in tour
//! cargo run --example analyzer -- prog.hac n=100    # your program
//! ```

use hac::core::pipeline::{compile, CompileOptions};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;

fn analyze(title: &str, source: &str, env: &ConstEnv) {
    println!("════ {title} ════");
    println!("{source}");
    match parse_program(source) {
        Ok(program) => match compile(&program, env, &CompileOptions::default()) {
            Ok(compiled) => println!("{}", compiled.report.render()),
            Err(e) => println!("compile error: {e}\n"),
        },
        Err(e) => println!("parse error: {e}\n"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        let source = std::fs::read_to_string(path)?;
        let mut env = ConstEnv::new();
        for binding in &args[1..] {
            let (name, value) = binding
                .split_once('=')
                .ok_or("parameter bindings look like n=100")?;
            env.bind(name, value.parse::<i64>()?);
        }
        analyze(path, &source, &env);
        return Ok(());
    }

    // Built-in tour: one program per analysis outcome.
    let env = ConstEnv::from_pairs([("n", 10), ("m", 10)]);

    analyze(
        "forward recurrence — (<) edge, forward loop",
        "param n;\nletrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
        &env,
    );
    analyze(
        "backward recurrence — (>) edge, backward loop",
        "param n;\nletrec* a = array (1,n) ([ n := 1 ] ++ [ i := a!(i+1) + 1 | i <- [1..n-1] ]);\n",
        &env,
    );
    analyze(
        "§5 example 1 — (<) and (=) edges, clause ordering",
        "param n;\nletrec* a = array (1,3*n) [* [ 3*i := i ] ++ \
         [ 3*i-1 := if i == 1 then 0 else a!(3*(i-1)) ] ++ [ 3*i-2 := a!(3*i) ] | i <- [1..n] *];\n",
        &env,
    );
    analyze(
        "even/odd split — collision checks elided",
        "param n;\nlet a = array (1,2*n) ([ 2*i := 1 | i <- [1..n] ] ++ [ 2*i-1 := 2 | i <- [1..n] ]);\n",
        &env,
    );
    analyze(
        "overlapping writes — runtime checks compiled",
        "param n;\nlet a = array (1,n) ([ i := 1 | i <- [1..n], i < 5 ] ++ [ i := 2 | i <- [4..n], i > 4 ]);\n",
        &env,
    );
    analyze(
        "missing element — empties reported",
        "param n;\nlet a = array (1,n) [ i := 1 | i <- [2..n] ];\n",
        &env,
    );
    analyze(
        "indirect subscript — thunked fallback",
        "param n;\ninput p (1,n);\nletrec* a = array (1,n) \
         [ i := if i == 1 then 1 else a!(p!i) | i <- [1..n] ];\n",
        &env,
    );
    analyze(
        "§9 Jacobi update — node splitting with carry buffers",
        hac::workloads::jacobi_source(),
        &env,
    );
    analyze(
        "§9 Gauss–Seidel update — in place, zero copies",
        hac::workloads::sor_source(),
        &env,
    );
    Ok(())
}
