//! The §9 LINPACK fragments — row swap, row scale, in-place SAXPY —
//! compiled as `bigupd` updates, printing each one's dependence edges
//! and the in-place strategy the compiler chose, then running a small
//! Gaussian-elimination-flavored pipeline built from them.
//!
//! ```sh
//! cargo run --example linpack_ops
//! ```

use std::collections::HashMap;

use hac::core::pipeline::{compile, run, CompileOptions};
use hac::lang::parser::parse_program;
use hac::lang::ConstEnv;
use hac_runtime::value::FuncTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, n) = (4i64, 6i64);
    let env = ConstEnv::from_pairs([("m", m), ("n", n)]);
    let a = hac::workloads::matrix(m, n, |i, j| ((i * 7 + j * 3) % 10) as f64);

    for (title, src) in [
        ("row swap (rows 1 ↔ 2)", hac::workloads::row_swap_source()),
        (
            "row scale (row 1 × 2.5)",
            hac::workloads::row_scale_source(),
        ),
        ("saxpy (row 1 += 3 × row 2)", hac::workloads::saxpy_source()),
    ] {
        println!("=== {title} ===");
        let program = parse_program(src)?;
        let compiled = compile(&program, &env, &CompileOptions::default())?;
        for u in &compiled.report.updates {
            for e in &u.anti_edges {
                println!("  anti {e}");
            }
            println!("  strategy: {}", u.strategy);
        }
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), a.clone());
        let out = run(&compiled, &inputs, &FuncTable::new())?;
        println!(
            "  copies: {}  temp elements: {}",
            out.counters.vm.elements_copied, out.counters.vm.temp_elements
        );
        let b = out.array("b");
        for i in 1..=2.min(m) {
            let row: Vec<String> = (1..=n)
                .map(|j| format!("{:>6.1}", b.get("b", &[i, j]).unwrap()))
                .collect();
            println!("  row {i}: {}", row.join(" "));
        }
        println!();
    }

    // A pivot-and-eliminate step written directly in the language:
    // swap the pivot row up, then eliminate below it.
    println!("=== pivot + eliminate (one elimination step) ===");
    let src = r#"
param m, n;
input a ((1,1),(m,n));
p = bigupd a ([ (1,j) := a!(2,j) | j <- [1..n] ] ++
              [ (2,j) := a!(1,j) | j <- [1..n] ]);
e = bigupd p [ (i,j) := p!(i,j) - (p!(i,1) / p!(1,1)) * p!(1,j)
             | i <- [2..m], j <- [1..n] ];
result e;
"#;
    let program = parse_program(src)?;
    let compiled = compile(&program, &env, &CompileOptions::default())?;
    for u in &compiled.report.updates {
        println!("  update `{}`: {}", u.name, u.strategy);
    }
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    let out = run(&compiled, &inputs, &FuncTable::new())?;
    let e = out.array("e");
    println!("  eliminated column 1 below the pivot:");
    for i in 1..=m {
        let row: Vec<String> = (1..=n)
            .map(|j| format!("{:>7.2}", e.get("e", &[i, j]).unwrap()))
            .collect();
        println!("  {}", row.join(" "));
    }
    for i in 2..=m {
        assert!(e.get("e", &[i, 1]).unwrap().abs() < 1e-9);
    }
    println!("  (column 1 is zero below the pivot; updates ran in place)");
    Ok(())
}
