//! Differential tests for resource governance: a fuel or memory cap
//! must produce *identical* behaviour on every engine — tree-walker,
//! sequential tape, and ParTape at 1/2/4/8 threads. Either every
//! engine completes with bit-identical output, or every engine fails
//! with the same `RuntimeError` (Debug-rendered, for payload parity).
//!
//! The same property is checked at the `Vm` level on randomly
//! generated programs (fuel splits mid-loop, mid-expression, at call
//! sites), and fault injection is exercised end-to-end through the
//! pipeline: an injected worker panic must leave the final answer
//! bit-identical to a fault-free run, with the recovery visible only
//! in the `engine_faults` counter.

use std::collections::HashMap;

use hac_codegen::limp::{LProgram, LStmt, StoreCheck, Vm, VmCounters};
use hac_codegen::partape::plan_tape;
use hac_codegen::tape::{compile_tape, TapeCtx};
use hac_core::pipeline::{
    compile, run_with_options, CompileOptions, Compiled, Engine, ExecOutput, RunOptions,
};
use hac_lang::ast::{BinOp, Expr, UnOp};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::governor::{FaultPlan, Limits, Meter, SharedCeiling};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn buf_bits(b: &ArrayBuf) -> (Vec<(i64, i64)>, Vec<u64>) {
    (b.bounds(), b.data().iter().map(|v| v.to_bits()).collect())
}

/// Zero the tape-only counter so tree-walk runs compare exactly.
fn sans_tape_ops(mut c: VmCounters) -> VmCounters {
    c.tape_ops = 0;
    c
}

/// A run collapsed to a comparable value: sorted array bits + sorted
/// scalar bits on success, the Debug-rendered error on failure.
type OkOutcome = (
    Vec<(String, (Vec<(i64, i64)>, Vec<u64>))>,
    Vec<(String, u64)>,
);
type Outcome = Result<OkOutcome, String>;

fn ok_outcome(out: &ExecOutput) -> OkOutcome {
    let mut arrays: Vec<_> = out
        .arrays
        .iter()
        .map(|(n, b)| (n.clone(), buf_bits(b)))
        .collect();
    arrays.sort();
    let mut scalars: Vec<_> = out
        .scalars
        .iter()
        .map(|(n, v)| (n.clone(), v.to_bits()))
        .collect();
    scalars.sort();
    (arrays, scalars)
}

fn outcome(r: &Result<ExecOutput, hac_runtime::RuntimeError>) -> Outcome {
    match r {
        Ok(out) => Ok(ok_outcome(out)),
        Err(e) => Err(format!("{e:?}")),
    }
}

/// Compile `src` once per engine; run each build under `limits` and
/// demand identical outcomes across all engines and thread counts.
/// Returns the sequential-tape outcome for extra assertions.
/// Harness hermeticity: every run driver calls this first, so the
/// whole binary ignores an ambient `HAC_FAULT_PLAN` (the CI
/// fault-injection job exports one for CLI smoke runs). A test that
/// wants faults injects them explicitly via `RunOptions::faults` /
/// `Vm::with_faults`, which always override the environment.
fn hermetic() {
    hac_codegen::suppress_env_fault_plan();
}

fn diff_limits(
    label: &str,
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
    limits: Limits,
) -> Outcome {
    hermetic();
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let build = |engine| -> Compiled {
        compile(
            &program,
            env,
            &CompileOptions {
                engine,
                ..CompileOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{label}: compile: {e}"))
    };
    let tree = build(Engine::TreeWalk);
    let tape = build(Engine::Tape);
    let par = build(Engine::ParTape);

    let opts = RunOptions {
        threads: Some(1),
        limits,
        faults: None,
        ceiling: None,
    };
    let want = outcome(&run_with_options(&tape, inputs, &funcs, &opts));
    let tree_got = outcome(&run_with_options(&tree, inputs, &funcs, &opts));
    assert_eq!(
        tree_got, want,
        "{label} {limits:?}: tree-walk vs tape outcome"
    );
    for threads in THREADS {
        let opts = RunOptions {
            threads: Some(threads),
            limits,
            faults: None,
            ceiling: None,
        };
        let got = outcome(&run_with_options(&par, inputs, &funcs, &opts));
        assert_eq!(got, want, "{label} {limits:?}: partape @{threads}t vs tape");
    }
    want
}

fn fuel(n: u64) -> Limits {
    Limits {
        fuel: Some(n),
        mem_bytes: None,
    }
}

fn mem(bytes: u64) -> Limits {
    Limits {
        fuel: None,
        mem_bytes: Some(bytes),
    }
}

/// Every workload kernel, a ladder of fuel budgets from "trips at the
/// first loop head" to "comfortably completes", plus tight and roomy
/// memory caps. The zero-fuel rung must actually exhaust, and the
/// unlimited rung must actually complete, so both sides of the
/// differential property are exercised on every kernel.
#[test]
fn kernels_hit_limits_identically_on_every_engine() {
    let kernels: Vec<(&str, &str, ConstEnv, HashMap<String, ArrayBuf>)> = vec![
        (
            "wavefront",
            wl::wavefront_source(),
            ConstEnv::from_pairs([("n", 10)]),
            HashMap::new(),
        ),
        (
            "section5_example1",
            wl::section5_example1_source(),
            ConstEnv::from_pairs([("n", 30)]),
            HashMap::new(),
        ),
        (
            "recurrence",
            wl::recurrence_source(),
            ConstEnv::from_pairs([("n", 100)]),
            HashMap::new(),
        ),
        (
            "pascal",
            wl::pascal_source(),
            ConstEnv::from_pairs([("n", 12)]),
            HashMap::new(),
        ),
        (
            "deforest",
            wl::deforest_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 23))]),
        ),
        (
            "permutation",
            wl::permutation_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 29))]),
        ),
        (
            "prefix_sum",
            wl::prefix_sum_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 31))]),
        ),
        (
            "convolution",
            wl::convolution_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 37))]),
        ),
        (
            "relaxation",
            wl::relaxation_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 41))]),
        ),
        (
            "thomas",
            wl::thomas_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("d".to_string(), wl::random_vector(24, 7))]),
        ),
        (
            "jacobi",
            wl::jacobi_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 11))]),
        ),
        (
            "jacobi_step",
            wl::jacobi_step_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 13))]),
        ),
        (
            "sor",
            wl::sor_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 17))]),
        ),
        (
            "matmul",
            wl::matmul_source(),
            ConstEnv::from_pairs([("n", 6)]),
            HashMap::from([
                ("x".to_string(), wl::random_matrix(6, 6, 31)),
                ("y".to_string(), wl::random_matrix(6, 6, 37)),
            ]),
        ),
    ];
    // Kernels that schedule VM-executed (thunkless/update) units burn
    // fuel and must exhaust at a zero budget; a kernel that compiles
    // entirely to demand-driven thunked groups (jacobi's carried
    // reductions) consumes none — the differential property still
    // holds, there is just nothing to trip.
    let mut exhausted = 0usize;
    for (label, src, env, inputs) in &kernels {
        for f in [0, 1, 7, 23, 101, 1009, 20011] {
            let got = diff_limits(label, src, env, inputs, fuel(f));
            if f == 0 && matches!(&got, Err(e) if e.contains("FuelExhausted")) {
                exhausted += 1;
            }
        }
        let full = diff_limits(label, src, env, inputs, Limits::unlimited());
        assert!(full.is_ok(), "{label}: unlimited run completes: {full:?}");
        for m in [0, 64, 1 << 30] {
            let got = diff_limits(label, src, env, inputs, mem(m));
            if m == 0 {
                assert!(
                    matches!(&got, Err(e) if e.contains("MemLimitExceeded")),
                    "{label}: zero-byte cap must trip, got {got:?}"
                );
            }
        }
    }
    assert!(
        exhausted >= 10,
        "most kernels run through a metered VM: {exhausted} exhausted at zero fuel"
    );
}

/// An injected worker panic (and an injected allocation failure) at
/// pipeline level: the run must still succeed with output and meter
/// state bit-identical to the fault-free run; only `engine_faults`
/// may differ, and it must record the recovery.
#[test]
fn injected_faults_are_invisible_in_the_answer() {
    let env = ConstEnv::from_pairs([("n", 16)]);
    let inputs = HashMap::from([("a".to_string(), wl::random_matrix(16, 16, 61))]);
    let program = parse_program(wl::jacobi_step_source()).unwrap();
    let funcs = FuncTable::new();
    let compiled = compile(
        &program,
        &env,
        &CompileOptions {
            engine: Engine::ParTape,
            ..CompileOptions::default()
        },
    )
    .unwrap();

    // The harness is hermetic to an ambient `HAC_FAULT_PLAN`, so the
    // default (no explicit plan) is a genuinely fault-free baseline.
    hermetic();
    let clean = run_with_options(
        &compiled,
        &inputs,
        &funcs,
        &RunOptions {
            threads: Some(4),
            limits: Limits::unlimited(),
            faults: None,
            ceiling: None,
        },
    )
    .unwrap();
    assert_eq!(clean.counters.vm.engine_faults, 0, "fault-free baseline");

    for spec in ["r0c0:panic", "r0c1:allocfail", "seed:7"] {
        let faulted = run_with_options(
            &compiled,
            &inputs,
            &funcs,
            &RunOptions {
                threads: Some(4),
                limits: Limits::unlimited(),
                faults: Some(FaultPlan::parse(spec).unwrap()),
                ceiling: None,
            },
        )
        .unwrap_or_else(|e| panic!("fault plan `{spec}` must be absorbed: {e}"));
        assert_eq!(
            ok_outcome(&clean),
            ok_outcome(&faulted),
            "plan `{spec}`: answer bit-identical despite faults"
        );
        assert_eq!(
            sans_faults(faulted.counters.vm),
            sans_faults(clean.counters.vm),
            "plan `{spec}`: work counters identical"
        );
        if spec.starts_with('r') {
            assert!(
                faulted.counters.vm.engine_faults >= 1,
                "plan `{spec}`: recovery recorded in counters"
            );
        }
    }
}

fn sans_faults(mut c: VmCounters) -> VmCounters {
    c.engine_faults = 0;
    c
}

// ---------------------------------------------------------------------
// Property: on randomly generated programs — loops whose bodies mix
// arithmetic, short-circuit operators, conditionals, calls, and array
// reads — a fuel budget trips at exactly the same charge on the
// tree-walker, the tape, and ParTape at every thread count, leaving
// identical remaining fuel and identical counter prefixes.
// ---------------------------------------------------------------------

struct Gen(wl::XorShift);

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.0.next_u64() % n
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        match self.below(8) {
            0..=2 => self.leaf(),
            3..=4 => {
                let op = [
                    BinOp::Add,
                    BinOp::Mul,
                    BinOp::Sub,
                    BinOp::Div,
                    BinOp::Lt,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Max,
                ][self.below(8) as usize];
                Expr::bin(op, self.expr(depth - 1), self.expr(depth - 1))
            }
            5 => Expr::Unary {
                op: [UnOp::Neg, UnOp::Abs, UnOp::Sqrt][self.below(3) as usize],
                expr: Box::new(self.expr(depth - 1)),
            },
            6 => Expr::If {
                cond: Box::new(self.expr(depth - 1)),
                then: Box::new(self.expr(depth - 1)),
                els: Box::new(self.expr(depth - 1)),
            },
            // Calls are the other fuel charge point: make them common.
            _ => match self.below(2) {
                0 => Expr::Call {
                    func: "sqrt".to_string(),
                    args: vec![self.expr(depth - 1)],
                },
                _ => Expr::Call {
                    func: "hypot".to_string(),
                    args: vec![self.expr(depth - 1), self.expr(depth - 1)],
                },
            },
        }
    }

    fn leaf(&mut self) -> Expr {
        match self.below(8) {
            0..=2 => Expr::int(self.below(9) as i64 - 2),
            3..=5 => Expr::var("i"),
            6 => Expr::var("g"),
            _ => Expr::index1(
                "u",
                Expr::add(Expr::var("i"), Expr::int(self.below(3) as i64)),
            ),
        }
    }
}

/// A 1..=8 loop storing the generated value into `out` — the same
/// harness shape `partape_equivalence` uses, always injective, so the
/// loop is a genuine parallel region under ParTape.
fn harness_program(value: Expr) -> LProgram {
    LProgram {
        stmts: vec![
            LStmt::Alloc {
                array: "out".to_string(),
                bounds: vec![(1, 8)],
                fill: 0.0,
                temp: false,
                checked: false,
            },
            LStmt::For {
                var: "i".to_string(),
                start: 1,
                end: 8,
                step: 1,
                par: true,
                red: false,
                body: vec![LStmt::Store {
                    array: "out".to_string(),
                    subs: vec![Expr::var("i")],
                    value,
                    check: StoreCheck::None,
                }],
            },
        ],
        result: "out".to_string(),
    }
}

fn fresh_vm(fuel: u64) -> Vm {
    hermetic();
    let mut vm = Vm::new();
    let mut u = ArrayBuf::new(&[(1, 12)], 0.0);
    for i in 1..=12 {
        u.set("u", &[i], (i * i) as f64 * 0.25 - 3.0).unwrap();
    }
    vm.bind("u", u);
    vm.set_global("n", 8.0);
    vm.set_global("g", 2.5);
    vm.with_meter(Meter::new(Limits {
        fuel: Some(fuel),
        mem_bytes: None,
    }));
    vm
}

/// One generated program, one fuel budget: the tree-walker, the tape,
/// and ParTape at every thread count must agree on success/error, the
/// error payload, the surviving array bits, the counter prefix, and
/// the *remaining fuel*.
fn diff_random_fuel(prog: &LProgram, fuel: u64) {
    let ctx = TapeCtx {
        shapes: HashMap::from([("u".to_string(), vec![(1i64, 12i64)])]),
        consts: HashMap::from([("n".to_string(), 8i64)]),
        globals: vec!["g".to_string()],
        ..TapeCtx::default()
    };
    let tape = compile_tape(prog, &ctx);
    let plan = plan_tape(&tape);

    let mut wvm = fresh_vm(fuel);
    let wr = wvm.run(prog).map_err(|e| format!("{e:?}"));
    let wleft = wvm.take_meter().fuel_left();

    let mut svm = fresh_vm(fuel);
    let sr = svm.run_tape(&tape).map_err(|e| format!("{e:?}"));
    let sleft = svm.take_meter().fuel_left();

    let label = |eng: &str| format!("fuel={fuel} {eng}\nprog:\n{}", prog.render());
    assert_eq!(sr, wr, "{}", label("tape vs tree: same outcome"));
    assert_eq!(sleft, wleft, "{}", label("tape vs tree: same fuel left"));
    if sr.is_ok() {
        assert_eq!(
            buf_bits(svm.array("out").unwrap()),
            buf_bits(wvm.array("out").unwrap()),
            "{}",
            label("tape vs tree: bits")
        );
    }
    assert_eq!(
        sans_tape_ops(svm.counters),
        sans_tape_ops(wvm.counters),
        "{}",
        label("tape vs tree: counters")
    );

    for threads in THREADS {
        let mut pvm = fresh_vm(fuel);
        let pr = pvm
            .run_partape(&tape, &plan, threads)
            .map_err(|e| format!("{e:?}"));
        let pleft = pvm.take_meter().fuel_left();
        assert_eq!(pr, sr, "{}", label(&format!("partape@{threads} outcome")));
        assert_eq!(
            pleft,
            sleft,
            "{}",
            label(&format!("partape@{threads} fuel left"))
        );
        if pr.is_ok() {
            assert_eq!(
                buf_bits(pvm.array("out").unwrap()),
                buf_bits(svm.array("out").unwrap()),
                "{}",
                label(&format!("partape@{threads} bits"))
            );
        }
        assert_eq!(
            sans_faults(pvm.counters),
            sans_faults(svm.counters),
            "{}",
            label(&format!("partape@{threads} counters"))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn random_programs_exhaust_fuel_identically(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 1));
        let depth = 2 + (seed % 3) as u32;
        let prog = harness_program(g.expr(depth));
        // Budgets straddling the interesting boundaries: immediate
        // exhaustion, mid-loop, mid-call, and comfortable completion.
        for fuel in [0, 1, 2, 3, 5, 9, (seed % 40), 10_000] {
            diff_random_fuel(&prog, fuel);
        }
    }
}

// ---------------------------------------------------------------------
// Fusion × governance: a fuel or memory cap must trip at *exactly* the
// same charge whether the innermost loops run as scalar tape ops or as
// fused `Op::VecLoop` kernels. The fused path bulk-charges a block of
// fuel up front and settles the shortfall through the same meter call
// the scalar loop would have made, so mid-kernel exhaustion leaves
// identical remaining fuel, identical counters, and the identical
// error payload — at every thread count.
// ---------------------------------------------------------------------

/// Fusion-rich kernels under a fuel ladder dense around the exhaustion
/// points of their innermost loops, plus memory caps. Each rung runs
/// `fuse: true` and `fuse: false` builds on both tape engines at
/// 1/2/4/8 threads and demands the same outcome (values, errors,
/// counters, fuel left — `ExecOutput::fuel_left` is part of the
/// compared surface via `diff_limits`'s per-engine assertions below).
#[test]
fn fused_and_unfused_builds_hit_limits_identically() {
    let kernels: Vec<(&str, &str, ConstEnv, HashMap<String, ArrayBuf>)> = vec![
        (
            "jacobi_step",
            wl::jacobi_step_source(),
            ConstEnv::from_pairs([("n", 10)]),
            HashMap::from([("a".to_string(), wl::random_matrix(10, 10, 13))]),
        ),
        (
            "relaxation",
            wl::relaxation_source(),
            ConstEnv::from_pairs([("n", 32)]),
            HashMap::from([("u".to_string(), wl::random_vector(32, 41))]),
        ),
        (
            "matmul",
            wl::matmul_source(),
            ConstEnv::from_pairs([("n", 6)]),
            HashMap::from([
                ("x".to_string(), wl::random_matrix(6, 6, 31)),
                ("y".to_string(), wl::random_matrix(6, 6, 37)),
            ]),
        ),
    ];
    let funcs = FuncTable::new();
    for (label, src, env, inputs) in &kernels {
        let program = parse_program(src).unwrap();
        let mut builds = Vec::new();
        for engine in [Engine::Tape, Engine::ParTape] {
            for fuse in [false, true] {
                let compiled = compile(
                    &program,
                    env,
                    &CompileOptions {
                        engine,
                        fuse,
                        ..CompileOptions::default()
                    },
                )
                .unwrap();
                builds.push((engine, fuse, compiled));
            }
        }
        // A ladder dense around small budgets (mid-kernel exhaustion on
        // every rung below completion) plus memory caps.
        let rungs: Vec<Limits> = [0u64, 1, 2, 3, 5, 8, 13, 37, 99, 100, 257, 1000, 100_000]
            .iter()
            .map(|&f| fuel(f))
            .chain([mem(0), mem(64), mem(1 << 30), Limits::unlimited()])
            .collect();
        for limits in rungs {
            let mut want: Option<(Outcome, Option<u64>)> = None;
            for (engine, fuse, compiled) in &builds {
                let threads: &[usize] = if *engine == Engine::ParTape {
                    &THREADS
                } else {
                    &[1]
                };
                for &t in threads {
                    let opts = RunOptions {
                        threads: Some(t),
                        limits,
                        faults: None,
                        ceiling: None,
                    };
                    let r = run_with_options(compiled, inputs, &funcs, &opts);
                    let fuel_left = r.as_ref().ok().and_then(|o| o.fuel_left);
                    let got = (outcome(&r), fuel_left);
                    match &want {
                        None => want = Some(got),
                        Some(w) => assert_eq!(
                            &got, w,
                            "{label} {limits:?}: {engine:?} fuse={fuse} @{t}t \
                             diverged from the scalar-tape baseline"
                        ),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// SharedCeiling: a per-request budget admitted against the global pool
// must behave *bit-identically* to the same budget with no pool behind
// it — on every engine, at every thread count, at every stripe width.
// That is the settlement rule made testable: admission reserves the
// whole budget up front, so execution only ever sees local counters.
// ---------------------------------------------------------------------

const STRIPES: [usize; 4] = [1, 2, 4, 8];

/// Roomy pool: admission always succeeds, so any divergence would come
/// from the striping/settlement machinery itself.
fn big_pool() -> Limits {
    Limits {
        fuel: Some(1 << 40),
        mem_bytes: Some(1 << 40),
    }
}

/// Run `src` under `limits` admitted against a fresh ceiling, for every
/// engine × thread count × stripe width, and demand the exact outcome
/// of the unpooled baseline (which `diff_limits` has already proven
/// engine-invariant).
fn diff_ceiling(
    label: &str,
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
    limits: Limits,
) {
    let want = diff_limits(label, src, env, inputs, limits);
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    for engine in [Engine::TreeWalk, Engine::Tape, Engine::ParTape] {
        let compiled = compile(
            &program,
            env,
            &CompileOptions {
                engine,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let threads: &[usize] = if engine == Engine::ParTape {
            &THREADS
        } else {
            &[1]
        };
        for &t in threads {
            for stripes in STRIPES {
                let opts = RunOptions {
                    threads: Some(t),
                    limits,
                    faults: None,
                    ceiling: Some(SharedCeiling::new(big_pool(), stripes)),
                };
                let got = outcome(&run_with_options(&compiled, inputs, &funcs, &opts));
                assert_eq!(
                    got, want,
                    "{label} {limits:?}: {engine:?}@{t}t stripes={stripes} under ceiling \
                     vs unpooled baseline"
                );
            }
        }
    }
}

#[test]
fn ceiling_admitted_budgets_exhaust_identically_everywhere() {
    let kernels: Vec<(&str, &str, ConstEnv, HashMap<String, ArrayBuf>)> = vec![
        (
            "wavefront",
            wl::wavefront_source(),
            ConstEnv::from_pairs([("n", 10)]),
            HashMap::new(),
        ),
        (
            "deforest",
            wl::deforest_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 23))]),
        ),
        (
            "thomas",
            wl::thomas_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("d".to_string(), wl::random_vector(24, 7))]),
        ),
        (
            "sor",
            wl::sor_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 17))]),
        ),
    ];
    for (label, src, env, inputs) in &kernels {
        for f in [0, 7, 1009] {
            diff_ceiling(label, src, env, inputs, fuel(f));
        }
        for m in [64, 1 << 30] {
            diff_ceiling(label, src, env, inputs, mem(m));
        }
        diff_ceiling(label, src, env, inputs, Limits::unlimited());
    }
}

/// A request with *no* local fuel cap under a capped pool draws blocks
/// lazily. Alone on a fresh pool its exhaustion point is still
/// deterministic — the pool is drained after exactly `pool` charges —
/// and must not depend on engine, thread count, or stripe width.
/// (ParTape runs such meters on the sequential path; the outcome, not
/// the path, is what's asserted.)
#[test]
fn lazy_ceiling_draws_exhaust_identically_everywhere() {
    let env = ConstEnv::from_pairs([("n", 10)]);
    let inputs = HashMap::new();
    let program = parse_program(wl::wavefront_source()).unwrap();
    let funcs = FuncTable::new();
    for pool_fuel in [0u64, 23, 1009, 1 << 30] {
        let mut outcomes: Vec<(String, Outcome)> = Vec::new();
        for engine in [Engine::TreeWalk, Engine::Tape, Engine::ParTape] {
            let compiled = compile(
                &program,
                &env,
                &CompileOptions {
                    engine,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            let threads: &[usize] = if engine == Engine::ParTape {
                &THREADS
            } else {
                &[1]
            };
            for &t in threads {
                for stripes in STRIPES {
                    // Fresh pool per run: spent fuel never returns, so a
                    // shared pool would conflate runs.
                    let pool = SharedCeiling::new(
                        Limits {
                            fuel: Some(pool_fuel),
                            mem_bytes: None,
                        },
                        stripes,
                    );
                    let opts = RunOptions {
                        threads: Some(t),
                        limits: Limits::unlimited(),
                        faults: None,
                        ceiling: Some(pool),
                    };
                    let got = outcome(&run_with_options(&compiled, &inputs, &funcs, &opts));
                    outcomes.push((format!("{engine:?}@{t}t stripes={stripes}"), got));
                }
            }
        }
        let (first_label, want) = outcomes[0].clone();
        for (label, got) in &outcomes {
            assert_eq!(
                got, &want,
                "pool_fuel={pool_fuel}: `{label}` diverged from `{first_label}`"
            );
        }
        // The n=10 wavefront retires ~100 metered ops, so pools below
        // that must trip and the roomy ones must complete.
        if pool_fuel < 100 {
            assert!(
                matches!(&want, Err(e) if e.contains("CeilingExhausted")),
                "pool_fuel={pool_fuel}: tight pool must trip, got {want:?}"
            );
        } else {
            assert!(want.is_ok(), "roomy pool completes: {want:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Property: per-request meters racing on one SharedCeiling never
// over-commit the pool, and every request's outcome — success/error,
// remaining fuel, output bits — equals its *solo* run with the same
// budget and no pool at all. Sibling scheduling is invisible.
// ---------------------------------------------------------------------

/// The comparable observables of one harness run: result, remaining
/// fuel, and (on success) the output array's bounds and value bits.
type HarnessOutcome = (Result<(), String>, u64, Option<(Vec<(i64, i64)>, Vec<u64>)>);

/// Run the harness program once on the sequential tape engine under
/// `meter`; returns the comparable outcome and the surviving meter.
fn run_harness_once(prog: &LProgram, meter: Meter) -> (HarnessOutcome, Meter) {
    hermetic();
    let ctx = TapeCtx {
        shapes: HashMap::from([("u".to_string(), vec![(1i64, 12i64)])]),
        consts: HashMap::from([("n".to_string(), 8i64)]),
        globals: vec!["g".to_string()],
        ..TapeCtx::default()
    };
    let tape = compile_tape(prog, &ctx);
    let mut vm = Vm::new();
    let mut u = ArrayBuf::new(&[(1, 12)], 0.0);
    for i in 1..=12 {
        u.set("u", &[i], (i * i) as f64 * 0.25 - 3.0).unwrap();
    }
    vm.bind("u", u);
    vm.set_global("n", 8.0);
    vm.set_global("g", 2.5);
    vm.with_meter(meter);
    let r = vm.run_tape(&tape).map_err(|e| format!("{e:?}"));
    let meter = vm.take_meter();
    let bits = r.is_ok().then(|| buf_bits(vm.array("out").unwrap()));
    ((r, meter.fuel_left(), bits), meter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn racing_request_meters_stay_isolated_and_account_exactly(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 1));
        let prog = harness_program(g.expr(2));

        // Six tenants with assorted finite fuel budgets (some starved,
        // some comfortable) and a mix of tight/roomy/absent memory
        // caps. The harness allocates one 8-element unchecked array:
        // 64 footprint bytes, so 63 trips and 64 fits.
        let mut rng = wl::XorShift::new(seed ^ 0x5eed);
        let budgets: Vec<Limits> = (0..6)
            .map(|i| Limits {
                fuel: Some(rng.next_u64() % 60),
                mem_bytes: match i % 3 {
                    0 => Some(64),
                    1 => Some(63),
                    _ => None,
                },
            })
            .collect();

        // Solo baselines: same budgets, no pool.
        let solo: Vec<_> = budgets
            .iter()
            .map(|l| run_harness_once(&prog, Meter::new(*l)).0)
            .collect();

        // One pool covering every reservation, striped per the seed.
        let pool_fuel: u64 = budgets.iter().map(|l| l.fuel.unwrap()).sum();
        let pool_mem: u64 = budgets.iter().map(|l| l.mem_bytes.unwrap_or(0)).sum();
        let stripes = STRIPES[(seed % 4) as usize];
        let ceiling = SharedCeiling::new(
            Limits {
                fuel: Some(pool_fuel),
                mem_bytes: Some(pool_mem),
            },
            stripes,
        );

        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = budgets
                .iter()
                .map(|l| {
                    let ceiling = &ceiling;
                    let prog = &prog;
                    scope.spawn(move || {
                        let meter = Meter::admit(*l, ceiling).expect("pool covers all budgets");
                        let (got, mut meter) = run_harness_once(prog, meter);
                        let spent = l.fuel.unwrap() - meter.fuel_left();
                        meter.settle();
                        (got, spent)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut total_spent = 0u64;
        for (i, ((got, spent), want)) in results.iter().zip(&solo).enumerate() {
            prop_assert_eq!(
                got, want,
                "tenant {} under racing pool vs solo (budget {:?})", i, budgets[i]
            );
            total_spent += spent;
        }

        // Exact settlement accounting: fuel spent is gone for good,
        // memory came back in full — at any stripe width.
        prop_assert_eq!(ceiling.fuel_available(), pool_fuel - total_spent);
        prop_assert_eq!(ceiling.mem_available(), pool_mem);
    }
}
