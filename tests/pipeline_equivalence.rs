//! Cross-crate equivalence: for every workload kernel, the thunkless
//! pipeline, the forced-thunked reference evaluator, and the hand-coded
//! Rust oracle must produce the same arrays (experiments E3/E13's
//! correctness half).

use std::collections::HashMap;

use hac_core::pipeline::{compile, run, CompileOptions, ExecMode};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;

fn run_modes(
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
) -> (
    hac_core::pipeline::ExecOutput,
    hac_core::pipeline::ExecOutput,
) {
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let auto = compile(&program, env, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("compile(auto): {e}"));
    let thunked = compile(
        &program,
        env,
        &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile(thunked): {e}"));
    let a = run(&auto, inputs, &funcs).unwrap_or_else(|e| panic!("run(auto): {e}"));
    let t = run(&thunked, inputs, &funcs).unwrap_or_else(|e| panic!("run(thunked): {e}"));
    (a, t)
}

#[test]
fn wavefront_all_strategies_agree() {
    let n = 12;
    let env = ConstEnv::from_pairs([("n", n)]);
    let (auto, thunked) = run_modes(wl::wavefront_source(), &env, &HashMap::new());
    let oracle = wl::wavefront_oracle(n);
    wl::assert_close(auto.array("a"), &oracle, 1e-12);
    wl::assert_close(thunked.array("a"), &oracle, 1e-12);
    // The optimized pipeline must be thunk-free with checks elided.
    assert_eq!(auto.counters.thunked.thunks_allocated, 0);
    assert_eq!(auto.counters.vm.check_ops, 0);
    assert_eq!(
        thunked.counters.thunked.thunks_allocated,
        (n * n) as u64,
        "one thunk per element in the baseline"
    );
}

#[test]
fn section5_example1_agrees() {
    let n = 50;
    let env = ConstEnv::from_pairs([("n", n)]);
    let (auto, thunked) = run_modes(wl::section5_example1_source(), &env, &HashMap::new());
    let oracle = wl::section5_example1_oracle(n);
    wl::assert_close(auto.array("a"), &oracle, 1e-12);
    wl::assert_close(thunked.array("a"), &oracle, 1e-12);
    assert_eq!(auto.counters.thunked.thunks_allocated, 0);
}

#[test]
fn section5_example2_agrees() {
    let (m, n) = (7, 9);
    let env = ConstEnv::from_pairs([("m", m), ("n", n)]);
    let (auto, thunked) = run_modes(wl::section5_example2_source(), &env, &HashMap::new());
    let oracle = wl::section5_example2_oracle(m, n);
    wl::assert_close(auto.array("a"), &oracle, 1e-12);
    wl::assert_close(thunked.array("a"), &oracle, 1e-12);
}

#[test]
fn recurrence_agrees() {
    let n = 200;
    let env = ConstEnv::from_pairs([("n", n)]);
    let (auto, thunked) = run_modes(wl::recurrence_source(), &env, &HashMap::new());
    let oracle = wl::recurrence_oracle(n);
    wl::assert_close(auto.array("a"), &oracle, 1e-12);
    wl::assert_close(thunked.array("a"), &oracle, 1e-12);
}

#[test]
fn thomas_agrees_and_solves() {
    let n = 40;
    let env = ConstEnv::from_pairs([("n", n)]);
    let d = wl::random_vector(n, 7);
    let mut inputs = HashMap::new();
    inputs.insert("d".to_string(), d.clone());
    let (auto, thunked) = run_modes(wl::thomas_source(), &env, &inputs);
    let oracle = wl::thomas_oracle(&d, n);
    wl::assert_close(auto.array("x"), &oracle, 1e-9);
    wl::assert_close(thunked.array("x"), &oracle, 1e-9);
    // cp/dp forward recurrences and x backward: all thunkless.
    assert_eq!(auto.counters.thunked.thunks_allocated, 0);
}

#[test]
fn jacobi_update_agrees() {
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let a = wl::random_matrix(n, n, 11);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    let program = parse_program(wl::jacobi_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
    let oracle = wl::jacobi_oracle(&a, n);
    wl::assert_close(out.array("b"), &oracle, 1e-12);
    assert_eq!(
        out.counters.vm.elements_copied, 0,
        "node splitting, no copy"
    );
    assert!(
        out.counters.vm.temp_elements < 4 * n as u64,
        "O(n) temporaries: {:?}",
        out.counters.vm
    );
}

#[test]
fn sor_update_agrees() {
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let a = wl::random_matrix(n, n, 13);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    let program = parse_program(wl::sor_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
    let oracle = wl::sor_oracle(&a, n);
    wl::assert_close(out.array("b"), &oracle, 1e-12);
    assert_eq!(out.counters.vm.elements_copied, 0);
    assert_eq!(out.counters.vm.temp_elements, 0, "pure in-place");
}

#[test]
fn linpack_row_ops_agree() {
    let (m, n) = (6, 9);
    let env = ConstEnv::from_pairs([("m", m), ("n", n)]);
    let a = wl::random_matrix(m, n, 17);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    for (src, oracle) in [
        (wl::row_swap_source(), wl::row_swap_oracle(&a, n)),
        (wl::row_scale_source(), wl::row_scale_oracle(&a, n)),
        (wl::saxpy_source(), wl::saxpy_oracle(&a, n)),
    ] {
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
        wl::assert_close(out.array("b"), &oracle, 1e-12);
        assert_eq!(out.counters.vm.elements_copied, 0, "{src}");
    }
}

#[test]
fn deforest_and_permutation_agree() {
    let n = 32;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 23);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());
    let (auto, _) = run_modes(wl::deforest_source(), &env, &inputs);
    wl::assert_close(auto.array("a"), &wl::deforest_oracle(&u, n), 1e-12);
    let (auto2, _) = run_modes(wl::permutation_source(), &env, &inputs);
    wl::assert_close(auto2.array("a"), &wl::permutation_oracle(&u, n), 1e-12);
    assert_eq!(auto2.counters.vm.check_ops, 0, "no collision possible");
}

#[test]
fn histogram_agrees() {
    let n = 100;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 29);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());
    let program = parse_program(wl::histogram_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
    wl::assert_close(out.array("h"), &wl::histogram_oracle(&u, n), 1e-12);
}

#[test]
fn matmul_agrees() {
    let n = 6;
    let env = ConstEnv::from_pairs([("n", n)]);
    let x = wl::random_matrix(n, n, 31);
    let y = wl::random_matrix(n, n, 37);
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), x.clone());
    inputs.insert("y".to_string(), y.clone());
    let (auto, thunked) = run_modes(wl::matmul_source(), &env, &inputs);
    let oracle = wl::matmul_oracle(&x, &y, n);
    wl::assert_close(auto.array("c"), &oracle, 1e-9);
    wl::assert_close(thunked.array("c"), &oracle, 1e-9);
    assert_eq!(auto.counters.thunked.thunks_allocated, 0);
}

#[test]
fn naive_list_te_agrees_with_pipeline() {
    // E11's baseline: evaluate the deforest kernel through TE cons
    // lists + foldl and compare.
    use hac_lang::core::translate;
    use hac_lang::number::number_clauses;
    use hac_runtime::list::{array_from_list, eval_core_list, ListCounters};

    let n = 16;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 41);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());

    let program = parse_program(wl::deforest_source()).unwrap();
    let def = program.array_def("a").unwrap();
    let mut comp = def.comp.clone();
    number_clauses(&mut comp);
    let term = translate(&comp);
    let mut arrays = HashMap::new();
    arrays.insert("u".to_string(), u.clone());
    let mut counters = ListCounters::default();
    let list = eval_core_list(&term, &env, &arrays, &FuncTable::new(), &mut counters).unwrap();
    let buf = array_from_list("a", &[(1, 2 * n)], &list).unwrap();
    wl::assert_close(&buf, &wl::deforest_oracle(&u, n), 1e-12);
    // The naive strategy really did allocate cons cells.
    assert!(counters.cons_allocs >= (2 * n) as u64, "{counters:?}");
}
