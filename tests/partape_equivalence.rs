//! Differential tests for the parallel tape engine (`Engine::ParTape`):
//! on every workload kernel, and on randomly generated well-formed
//! programs, ParTape at 1, 2, 4, and 8 threads must be *bit-identical*
//! to the sequential tape — same arrays to the last mantissa bit, same
//! scalars, the same runtime errors (deterministic lowest-iteration
//! selection), and *exactly* the same instrumentation counters,
//! including `tape_ops`.
//!
//! Kernels with loop-carried dependences (SOR, the linear recurrence)
//! compile to zero parallel regions — the fallback path — and still
//! pass the same bitwise comparison.

use std::collections::HashMap;

use hac_codegen::limp::{LProgram, LStmt, StoreCheck, Vm, VmCounters};
use hac_codegen::partape::{plan_tape, ParPlan};
use hac_codegen::tape::{compile_tape, TapeCtx};
use hac_core::pipeline::{
    compile, run, run_with_threads, CompileOptions, Compiled, Engine, ExecOutput, Unit,
};
use hac_lang::ast::{BinOp, Expr, UnOp};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn buf_bits(b: &ArrayBuf) -> (Vec<(i64, i64)>, Vec<u64>) {
    (b.bounds(), b.data().iter().map(|v| v.to_bits()).collect())
}

/// Zero the fault-recovery counter before comparing. The harness is
/// hermetic to an ambient `HAC_FAULT_PLAN` (see [`hermetic`]), so this
/// only matters for tests that inject faults explicitly — everything
/// other than the recovery count must still merge exactly.
fn sans_faults(mut c: VmCounters) -> VmCounters {
    c.engine_faults = 0;
    c
}

/// Both runs execute a tape, so *every* counter — `tape_ops` included —
/// must merge to exactly the sequential value.
fn assert_outputs_identical(par: &ExecOutput, seq: &ExecOutput, label: &str) {
    let mut pn: Vec<&String> = par.arrays.keys().collect();
    let mut sn: Vec<&String> = seq.arrays.keys().collect();
    pn.sort();
    sn.sort();
    assert_eq!(pn, sn, "{label}: same arrays bound");
    for name in pn {
        assert_eq!(
            buf_bits(&par.arrays[name]),
            buf_bits(&seq.arrays[name]),
            "{label}: array `{name}` bit-identical"
        );
    }
    let mut ps: Vec<(&String, u64)> = par.scalars.iter().map(|(n, v)| (n, v.to_bits())).collect();
    let mut ss: Vec<(&String, u64)> = seq.scalars.iter().map(|(n, v)| (n, v.to_bits())).collect();
    ps.sort();
    ss.sort();
    assert_eq!(ps, ss, "{label}: scalars bit-identical");
    assert_eq!(
        sans_faults(par.counters.vm),
        sans_faults(seq.counters.vm),
        "{label}: VM counters (incl. tape_ops) agree"
    );
    assert_eq!(
        par.counters.thunked, seq.counters.thunked,
        "{label}: thunk counters agree"
    );
}

/// Total parallel regions across a compilation's units.
fn par_regions(compiled: &Compiled) -> usize {
    compiled
        .units
        .iter()
        .map(|u| match u {
            Unit::Thunkless { par, .. } | Unit::Update { par, .. } => {
                par.as_ref().map_or(0, ParPlan::region_count)
            }
            _ => 0,
        })
        .sum()
}

/// Compile under `Engine::Tape` and `Engine::ParTape`, run the parallel
/// build at every thread count against the sequential baseline, and
/// return the parallel compilation for region assertions.
/// Harness hermeticity: every run driver calls this first, so the
/// whole binary ignores an ambient `HAC_FAULT_PLAN` (the CI
/// fault-injection job exports one for CLI smoke runs). Faults in
/// equivalence tests are only ever injected explicitly.
fn hermetic() {
    hac_codegen::suppress_env_fault_plan();
}

fn diff_kernel(
    label: &str,
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
) -> Compiled {
    hermetic();
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let opts = |engine| CompileOptions {
        engine,
        ..CompileOptions::default()
    };
    let seq = compile(&program, env, &opts(Engine::Tape))
        .unwrap_or_else(|e| panic!("{label}: compile(tape): {e}"));
    let par = compile(&program, env, &opts(Engine::ParTape))
        .unwrap_or_else(|e| panic!("{label}: compile(partape): {e}"));
    let want = run(&seq, inputs, &funcs).unwrap_or_else(|e| panic!("{label}: run(tape): {e}"));
    for threads in THREADS {
        let got = run_with_threads(&par, inputs, &funcs, threads)
            .unwrap_or_else(|e| panic!("{label}: run(partape, {threads}): {e}"));
        assert_outputs_identical(&got, &want, &format!("{label} @{threads}t"));
    }
    par
}

#[test]
fn closed_form_kernels_agree() {
    for (label, src, n) in [
        ("wavefront", wl::wavefront_source(), 12),
        ("section5_example1", wl::section5_example1_source(), 50),
        ("recurrence", wl::recurrence_source(), 200),
        ("pascal", wl::pascal_source(), 16),
    ] {
        let env = ConstEnv::from_pairs([("n", n)]);
        diff_kernel(label, src, &env, &HashMap::new());
    }
}

#[test]
fn section5_example2_agrees() {
    let env = ConstEnv::from_pairs([("m", 7), ("n", 9)]);
    diff_kernel(
        "section5_example2",
        wl::section5_example2_source(),
        &env,
        &HashMap::new(),
    );
}

#[test]
fn vector_input_kernels_agree() {
    let n = 32;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), wl::random_vector(n, 23));
    for (label, src) in [
        ("deforest", wl::deforest_source()),
        ("permutation", wl::permutation_source()),
        ("histogram", wl::histogram_source()),
        ("prefix_sum", wl::prefix_sum_source()),
        ("running_max", wl::running_max_source()),
        ("convolution", wl::convolution_source()),
        ("relaxation", wl::relaxation_source()),
    ] {
        diff_kernel(label, src, &env, &inputs);
    }
}

#[test]
fn thomas_agrees() {
    let n = 40;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("d".to_string(), wl::random_vector(n, 7));
    diff_kernel("thomas", wl::thomas_source(), &env, &inputs);
}

#[test]
fn update_kernels_agree() {
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(n, n, 11));
    diff_kernel("jacobi", wl::jacobi_source(), &env, &inputs);
    diff_kernel("jacobi_step", wl::jacobi_step_source(), &env, &inputs);
    diff_kernel("sor", wl::sor_source(), &env, &inputs);

    let (m, n) = (6, 9);
    let env = ConstEnv::from_pairs([("m", m), ("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(m, n, 17));
    diff_kernel("row_swap", wl::row_swap_source(), &env, &inputs);
    diff_kernel("row_scale", wl::row_scale_source(), &env, &inputs);
    diff_kernel("saxpy", wl::saxpy_source(), &env, &inputs);
}

#[test]
fn matrix_input_kernels_agree() {
    let n = 8;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), wl::random_matrix(n, n, 31));
    inputs.insert("y".to_string(), wl::random_matrix(n, n, 37));
    diff_kernel("matmul", wl::matmul_source(), &env, &inputs);

    let mut inputs = HashMap::new();
    inputs.insert("za".to_string(), wl::random_matrix(n, n, 41));
    inputs.insert("zr".to_string(), wl::random_matrix(n, n, 43));
    inputs.insert("zb".to_string(), wl::random_matrix(n, n, 47));
    diff_kernel("lk23", wl::lk23_source(), &env, &inputs);

    let env = ConstEnv::from_pairs([("n", 24), ("m", 10)]);
    let mut inputs = HashMap::new();
    inputs.insert("u0".to_string(), wl::random_vector(24, 53));
    diff_kernel("heat1d", wl::heat1d_source(), &env, &inputs);
}

#[test]
fn dependence_free_kernels_get_parallel_regions() {
    let n = 16;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(n, n, 61));
    let c = diff_kernel("jacobi_step", wl::jacobi_step_source(), &env, &inputs);
    assert!(par_regions(&c) > 0, "out-of-place jacobi parallelizes");

    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), wl::random_vector(n, 67));
    let c = diff_kernel("relaxation", wl::relaxation_source(), &env, &inputs);
    assert!(par_regions(&c) > 0, "relaxation parallelizes");
    let c = diff_kernel("permutation", wl::permutation_source(), &env, &inputs);
    assert!(par_regions(&c) > 0, "permutation parallelizes");
    let c = diff_kernel("deforest", wl::deforest_source(), &env, &inputs);
    assert!(par_regions(&c) > 0, "deforest parallelizes");
}

#[test]
fn carried_dependence_kernels_fall_back_sequential() {
    // SOR's wavefront flow dependence and the first-order recurrence
    // both carry on every loop: §10 refuses, so ParTape compiles zero
    // regions and runs the plain sequential dispatch path.
    let n = 12;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(n, n, 71));
    let c = diff_kernel("sor", wl::sor_source(), &env, &inputs);
    assert_eq!(par_regions(&c), 0, "sor must stay sequential");

    let c = diff_kernel("recurrence", wl::recurrence_source(), &env, &HashMap::new());
    assert_eq!(par_regions(&c), 0, "recurrence must stay sequential");
}

// ---------------------------------------------------------------------
// Property: random well-formed expression trees evaluate identically
// under ParTape at every thread count — NaN propagation, lazy errors
// (deterministic lowest-ordinal selection), and exact counters.
// ---------------------------------------------------------------------

/// Deterministic expression generator (mirrors `tape_equivalence.rs`).
struct Gen(wl::XorShift);

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.0.next_u64() % n
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        match self.below(10) {
            0..=2 => self.leaf(),
            3..=5 => {
                let op = self.binop();
                let lhs = self.expr(depth - 1);
                let rhs = if op == BinOp::Mod {
                    Expr::int([1, 2, 3, 5, -3][self.below(5) as usize])
                } else {
                    self.expr(depth - 1)
                };
                Expr::bin(op, lhs, rhs)
            }
            6 => Expr::Unary {
                op: [
                    UnOp::Neg,
                    UnOp::Not,
                    UnOp::Abs,
                    UnOp::Sqrt,
                    UnOp::Exp,
                    UnOp::Log,
                    UnOp::Sin,
                    UnOp::Cos,
                ][self.below(8) as usize],
                expr: Box::new(self.expr(depth - 1)),
            },
            7 => Expr::If {
                cond: Box::new(self.expr(depth - 1)),
                then: Box::new(self.expr(depth - 1)),
                els: Box::new(self.expr(depth - 1)),
            },
            8 => Expr::Let {
                binds: vec![("t".to_string(), self.expr(depth - 1))],
                body: Box::new(self.expr(depth - 1)),
            },
            _ => match self.below(4) {
                0 => Expr::Call {
                    func: "sqrt".to_string(),
                    args: vec![self.expr(depth - 1)],
                },
                1 => Expr::Call {
                    func: "hypot".to_string(),
                    args: vec![self.expr(depth - 1), self.expr(depth - 1)],
                },
                2 => Expr::Call {
                    func: "mystery".to_string(),
                    args: vec![self.expr(depth - 1)],
                },
                _ => Expr::index1("u", self.expr(depth - 1)),
            },
        }
    }

    fn leaf(&mut self) -> Expr {
        match self.below(12) {
            0..=2 => Expr::int(self.below(12) as i64 - 3),
            3 => Expr::num([0.0, 1.5, -2.5, 0.5, f64::NAN, f64::INFINITY][self.below(6) as usize]),
            4..=6 => Expr::var("i"),
            7 => Expr::var("g"),
            8 => Expr::var("n"),
            9 => Expr::var("nope"),
            10 => Expr::index1(
                "u",
                Expr::add(Expr::var("i"), Expr::int(self.below(4) as i64)),
            ),
            _ => Expr::index1("w", Expr::var("i")),
        }
    }

    fn binop(&mut self) -> BinOp {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::And,
            BinOp::Or,
            BinOp::Min,
            BinOp::Max,
        ][self.below(15) as usize]
    }
}

/// Wrap a generated value expression in an `1..=8` loop storing into
/// `out`. The loop is marked `par` only for the injective store
/// subscripts — exactly the invariant the real compiler's §10 verdict
/// guarantees (colliding variants would be a genuine data race, which
/// is why `lower` never marks such a loop).
fn harness_program(value: Expr, variant: u64) -> LProgram {
    let sub = match variant % 5 {
        0 | 1 => Expr::var("i"),
        // OOB at i = 8 (out has bounds (1,8)) — error at the last
        // ordinal, exercising the chunk merge's success prefix.
        2 => Expr::add(Expr::var("i"), Expr::int(1)),
        // OOB immediately at i = 1 — error at ordinal 0.
        3 => Expr::sub(Expr::var("i"), Expr::int(1)),
        // Collides at i = 3: NOT injective, so never `par`.
        _ => Expr::add(
            Expr::bin(BinOp::Mod, Expr::var("i"), Expr::int(2)),
            Expr::int(1),
        ),
    };
    let injective = variant % 5 != 4;
    let checked = variant.is_multiple_of(2);
    LProgram {
        stmts: vec![
            LStmt::Alloc {
                array: "out".to_string(),
                bounds: vec![(1, 8)],
                fill: 0.0,
                temp: false,
                checked,
            },
            LStmt::For {
                var: "i".to_string(),
                start: 1,
                end: 8,
                step: 1,
                par: injective,
                red: false,
                body: vec![LStmt::Store {
                    array: "out".to_string(),
                    subs: vec![sub],
                    value,
                    check: if checked {
                        StoreCheck::Monolithic
                    } else {
                        StoreCheck::None
                    },
                }],
            },
        ],
        result: "out".to_string(),
    }
}

fn fresh_vm() -> Vm {
    hermetic();
    let mut vm = Vm::new();
    let mut u = ArrayBuf::new(&[(1, 12)], 0.0);
    for i in 1..=12 {
        u.set("u", &[i], (i * i) as f64 * 0.25 - 3.0).unwrap();
    }
    vm.bind("u", u);
    vm.set_global("n", 8.0);
    vm.set_global("g", 2.5);
    vm
}

/// Run sequential tape vs ParTape at every thread count, demanding
/// identical outcomes: bit-identical arrays on success, identical
/// errors (Debug-rendered, for NaN payload parity) on failure, and
/// exactly equal counters either way.
fn diff_random(prog: &LProgram) {
    let ctx = TapeCtx {
        shapes: HashMap::from([("u".to_string(), vec![(1i64, 12i64)])]),
        consts: HashMap::from([("n".to_string(), 8i64)]),
        globals: vec!["g".to_string()],
        ..TapeCtx::default()
    };
    let tape = compile_tape(prog, &ctx);
    let plan = plan_tape(&tape);

    let mut svm = fresh_vm();
    let sr = svm.run_tape(&tape);
    for threads in THREADS {
        let mut pvm = fresh_vm();
        let pr = pvm.run_partape(&tape, &plan, threads);
        match (&sr, &pr) {
            (Ok(()), Ok(())) => {
                assert_eq!(
                    buf_bits(svm.array("out").unwrap()),
                    buf_bits(pvm.array("out").unwrap()),
                    "threads={threads}: arrays bit-identical\nprog:\n{}",
                    prog.render()
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "threads={threads}: identical errors\nprog:\n{}",
                    prog.render()
                );
            }
            _ => panic!(
                "threads={threads}: engines disagree: tape={sr:?} partape={pr:?}\nprog:\n{}",
                prog.render()
            ),
        }
        assert_eq!(
            sans_faults(svm.counters),
            sans_faults(pvm.counters),
            "threads={threads}: counters agree\nprog:\n{}",
            prog.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_programs_agree(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 1));
        let depth = 2 + (seed % 3) as u32;
        let value = g.expr(depth);
        let prog = harness_program(value, seed / 7);
        diff_random(&prog);
    }
}

#[test]
fn error_ordinal_selection_is_deterministic() {
    // Both OOB shapes — fault at the last ordinal (variant 7 ≡ 2 mod 5)
    // and at ordinal 0 (variant 3) — odd, so the stores are unchecked
    // and the loop is a genuine parallel region.
    for variant in [7u64, 3] {
        diff_random(&harness_program(Expr::var("i"), variant));
    }
    // And explicitly: NaN values flowing through the parallel store.
    let nan = Expr::bin(BinOp::Div, Expr::num(0.0), Expr::num(0.0));
    diff_random(&harness_program(nan, 1));
}
