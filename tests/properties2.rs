//! Second round of property tests: multi-dimensional exactness,
//! strided-generator differential testing, graph-algorithm laws, and
//! update-strategy semantic agreement.

use std::collections::HashMap;

use proptest::prelude::*;

use hac_analysis::analyze::analyze_bigupd;
use hac_analysis::direction::{Dir, DirVec};
use hac_analysis::equation::{DimEquation, LoopTerm};
use hac_analysis::exact::{exact_test, ExactResult};
use hac_analysis::search::TestPolicy;
use hac_codegen::limp::Vm;
use hac_codegen::lower::lower_update;
use hac_core::pipeline::{compile, run, CompileOptions, ExecMode};
use hac_graph::{is_topological, tarjan_scc, topo_sort, DiGraph, NodeId, TopoResult};
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::{parse_comp, parse_program};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_schedule::split::plan_update;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The exact test solves 2-D simultaneous systems exactly.
    #[test]
    fn exact_two_dims_simultaneous(
        a0 in -2i64..=2, b0 in -2i64..=2, r0 in -4i64..=4,
        a1 in -2i64..=2, b1 in -2i64..=2, r1 in -4i64..=4,
        m in 1i64..=4,
        dir in prop_oneof![Just(Dir::Any), Just(Dir::Lt), Just(Dir::Eq), Just(Dir::Gt)],
    ) {
        let eqs = vec![
            DimEquation {
                shared: vec![LoopTerm { size: m, a: a0, b: b0 }],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: r0,
            },
            DimEquation {
                shared: vec![LoopTerm { size: m, a: a1, b: b1 }],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: r1,
            },
        ];
        let dv = DirVec(vec![dir]);
        let mut want = false;
        for x in 1..=m {
            for y in 1..=m {
                let ok = match dir {
                    Dir::Any => true,
                    Dir::Lt => x < y,
                    Dir::Eq => x == y,
                    Dir::Gt => x > y,
                };
                if ok && a0 * x - b0 * y == r0 && a1 * x - b1 * y == r1 {
                    want = true;
                }
            }
        }
        let got = exact_test(&eqs, &dv, 1_000_000);
        prop_assert_eq!(matches!(got, ExactResult::Dependent(_)), want, "{:?}", got);
    }

    /// Strided recurrences agree between thunkless and thunked for
    /// random strides and offsets (the loop-normalization differential).
    #[test]
    fn strided_recurrences_agree(stride in 2i64..=4, reps in 3i64..=8) {
        // Chain over multiples of `stride`, other slots zero-filled.
        let hi = stride * reps;
        let src = format!(
            "param n;\nletrec* a = array (1,{hi}) \
             ([ {stride} := 1 ] ++ \
              [ i := a!(i-{stride}) + 1 | i <- [{},{}..{hi}] ] ++ \
              [ i := 0 | i <- [1..{hi}], i mod {stride} /= 0 ]);\n",
            2 * stride,
            3 * stride
        );
        let env = ConstEnv::from_pairs([("n", hi)]);
        let program = parse_program(&src).unwrap();
        let funcs = FuncTable::new();
        let auto = compile(&program, &env, &CompileOptions::default())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let thunked = compile(&program, &env, &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        }).unwrap();
        let a = run(&auto, &HashMap::new(), &funcs).unwrap();
        let t = run(&thunked, &HashMap::new(), &funcs).unwrap();
        prop_assert_eq!(a.array("a").data(), t.array("a").data());
        // The strided chain itself must be thunkless (guards on the
        // zero-fill clause don't affect it).
        prop_assert_eq!(a.counters.thunked.thunks_allocated, 0);
    }

    /// Tarjan + topo laws on random graphs: the condensation is always
    /// a DAG, and topo_sort's output (when acyclic) is topological.
    #[test]
    fn graph_laws(edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24)) {
        let mut g: DiGraph<()> = DiGraph::with_nodes(8);
        for (a, b) in &edges {
            g.add_edge(NodeId(*a), NodeId(*b), ());
        }
        let sccs = tarjan_scc(&g);
        // Partition: every node in exactly one component.
        let mut seen = [0usize; 8];
        for members in &sccs.members {
            for m in members {
                seen[m.0] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // Condensation acyclic.
        let cond = sccs.condensation(&g);
        match topo_sort(&cond) {
            TopoResult::Sorted(order) => prop_assert!(is_topological(&cond, &order)),
            TopoResult::Cycle(_) => prop_assert!(false, "condensation must be a DAG"),
        }
        // topo_sort on g itself: sorted iff every SCC is trivial.
        let has_cycle = (0..sccs.len()).any(|i| sccs.is_cyclic(i, &g));
        match topo_sort(&g) {
            TopoResult::Sorted(order) => {
                prop_assert!(!has_cycle);
                prop_assert!(is_topological(&g, &order));
            }
            TopoResult::Cycle(_) => prop_assert!(has_cycle),
        }
    }

    /// Random shift updates: the planned in-place/split update always
    /// matches copy semantics.
    #[test]
    fn shift_updates_match_copy_semantics(offset in -3i64..=3, n in 6i64..=12) {
        prop_assume!(offset != 0);
        let (lo, hi) = if offset > 0 {
            (1, n - offset)
        } else {
            (1 - offset, n)
        };
        let src = format!("[ i := a!(i+{offset}) * 2 + 1 | i <- [{lo}..{hi}] ]");
        let mut c = parse_comp(&src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
        let up = plan_update(&c, &u).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let lowered = lower_update("a", "b", &u.refs, &up, &env).unwrap();

        let mut base = ArrayBuf::new(&[(1, n)], 0.0);
        for i in 1..=n {
            base.set("a", &[i], (i * 3 % 7) as f64).unwrap();
        }
        // Oracle: all reads from the pristine array.
        let mut want = base.clone();
        for i in lo..=hi {
            let v = base.get("a", &[i + offset]).unwrap() * 2.0 + 1.0;
            want.set("a", &[i], v).unwrap();
        }
        let mut vm = Vm::new();
        vm.set_global("n", n as f64);
        vm.bind("a", base);
        if lowered.in_place {
            vm.alias("b", "a");
        }
        vm.run(&lowered.prog).unwrap();
        let got = vm.array("b").unwrap();
        prop_assert_eq!(got.data(), want.data(), "offset {} plan:\n{}", offset, lowered.prog.render());
        // Never a whole-array copy for a linear shift.
        prop_assert_eq!(vm.counters.elements_copied, 0);
    }

    /// Pretty-printing round-trips random builder-generated programs.
    #[test]
    fn builder_pretty_parse_roundtrip(
        border in -5i64..=5,
        scale in 1i64..=4,
        off in 1i64..=3,
    ) {
        use hac_lang::build::{comp, e, program};
        let p = program()
            .param("n")
            .letrec_star(
                "a",
                [(e(1), e("n"))],
                comp()
                    .clause([e(off)], e(border))
                    .append(
                        comp()
                            .clause(
                                [e("i")],
                                e("a").idx([e("i") - e(off)]) * e(scale) + e(1),
                            )
                            .generate("i", e(off) + e(1), e("n")),
                    ),
            )
            .finish();
        let text = hac_lang::pretty::program_to_string(&p);
        let back = parse_program(&text).unwrap();
        prop_assert_eq!(p, back, "{}", text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// 2-D legality: schedules for random single-stencil recurrences
    /// (one neighbor read with random offsets) always satisfy every
    /// dependence edge per the instance-level oracle.
    #[test]
    fn two_d_schedules_are_legal(di in -2i64..=2, dj in -2i64..=2, n in 4i64..=7) {
        prop_assume!(di != 0 || dj != 0);
        // Border clauses seed everything the interior read can touch;
        // the interior reads a!(i+di, j+dj) within a safe sub-box.
        let (ilo, ihi) = (1 + di.abs(), n - di.abs());
        let (jlo, jhi) = (1 + dj.abs(), n - dj.abs());
        prop_assume!(ilo < ihi && jlo < jhi);
        let src = format!(
            "[ (i,j) := i + j | i <- [1..n], j <- [1..n], \
               i < {ilo} || i > {ihi} || j < {jlo} || j > {jhi} ] ++ \
             [ (i,j) := a!(i+{di},j+{dj}) + 1 \
               | i <- [{ilo}..{ihi}], j <- [{jlo}..{jhi}] ]"
        );
        let mut c = parse_comp(&src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let refs = hac_analysis::refs::collect_refs(&c, "a", &env).unwrap();
        let flow =
            hac_analysis::depgraph::flow_dependences(&refs, "a", &TestPolicy::default());
        match hac_schedule::scheduler::schedule(&c, &flow.edges) {
            hac_schedule::plan::ScheduleOutcome::Thunkless(plan) => {
                hac_schedule::check::check_plan(&plan, &c, &flow.edges, &env)
                    .map_err(|e| {
                        TestCaseError::fail(format!("{e}\n{}", plan.render()))
                    })?;
                // And the semantics agree with the thunked evaluator.
                let full = format!(
                    "param n;\nletrec* a = array ((1,1),(n,n)) ({src});\n"
                );
                let program = parse_program(&full).unwrap();
                let funcs = FuncTable::new();
                let auto = compile(&program, &env, &CompileOptions::default()).unwrap();
                let thunked = compile(&program, &env, &CompileOptions {
                    mode: ExecMode::ForceThunked,
                    ..CompileOptions::default()
                }).unwrap();
                let a = run(&auto, &HashMap::new(), &funcs).unwrap();
                let t = run(&thunked, &HashMap::new(), &funcs).unwrap();
                prop_assert_eq!(a.array("a").data(), t.array("a").data());
            }
            hac_schedule::plan::ScheduleOutcome::NeedsThunks(_) => {
                // A guarded single-offset stencil is always acyclic in
                // one direction; fallback would be a scheduler bug.
                return Err(TestCaseError::fail("unexpected thunk fallback"));
            }
        }
    }
}
