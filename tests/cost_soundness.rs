//! Soundness of compile-time cost certificates (the `CostCert` the
//! pipeline attaches to every `Compiled`): for every shipped program
//! and parameter rung, running with limits set *exactly* to the
//! evaluated certificate must succeed — on the tree-walker, the
//! sequential tape, and ParTape at 1/2/4/8 threads, fused and unfused.
//! Success at `limits == cert` is the oracle "metered usage ≤
//! certificate" for both resources at once, because the meter is the
//! thing that would have stopped the run.
//!
//! For *exact* certificates the bound is also tight: the run retires
//! with zero fuel left, and one unit below the certificate fails — on
//! every engine, at every thread count, with the same error class.
//!
//! Admission decisions built on certificates are a pure function of
//! (certificate, request): a server's verdict for a given request is
//! bit-identical at every worker-thread count and stripe width.
//!
//! The rendered `cost ...` report lines for `programs/*.hac` are
//! pinned in `tests/golden/cost_report.txt`; regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test cost_soundness`.

use std::collections::HashMap;

use hac::serve::{Request, ServeOptions, Server};
use hac_core::pipeline::{compile, run_with_options, CompileOptions, Compiled, Engine, RunOptions};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::governor::Limits;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Harness hermeticity: ignore any ambient `HAC_FAULT_PLAN` (the CI
/// fault-injection job exports one suite-wide).
fn hermetic() {
    hac_codegen::suppress_env_fault_plan();
}

/// Input shapes for the shipped programs, keyed by what each
/// `programs/*.hac` declares.
enum Shape {
    Vector,
    Matrix,
}

/// (program name, source, declared input shapes).
type SuiteEntry = (&'static str, String, Vec<(&'static str, Shape)>);

fn suite() -> Vec<SuiteEntry> {
    let load = |name: &str| {
        std::fs::read_to_string(format!("programs/{name}.hac"))
            .unwrap_or_else(|e| panic!("programs/{name}.hac: {e}"))
    };
    vec![
        (
            "dot",
            load("dot"),
            vec![("a", Shape::Vector), ("b", Shape::Vector)],
        ),
        ("jacobi", load("jacobi"), vec![("a", Shape::Matrix)]),
        (
            "matmul",
            load("matmul"),
            vec![("x", Shape::Matrix), ("y", Shape::Matrix)],
        ),
        (
            "matvec",
            load("matvec"),
            vec![("m", Shape::Matrix), ("x", Shape::Vector)],
        ),
        ("sor", load("sor"), vec![("a", Shape::Matrix)]),
        ("tridiag", load("tridiag"), vec![("d", Shape::Vector)]),
        ("wavefront", load("wavefront"), vec![]),
    ]
}

fn inputs_for(shapes: &[(&'static str, Shape)], n: i64) -> HashMap<String, ArrayBuf> {
    shapes
        .iter()
        .enumerate()
        .map(|(k, (name, shape))| {
            let seed = 7 + 13 * k as u64;
            let buf = match shape {
                Shape::Vector => wl::random_vector(n, seed),
                Shape::Matrix => wl::random_matrix(n, n, seed),
            };
            (name.to_string(), buf)
        })
        .collect()
}

/// Every (engine, fuse) build of `src` at `n`; the certificate must be
/// identical across them — it is derived before any engine- or
/// fusion-specific lowering.
fn builds(src: &str, n: i64) -> Vec<(Engine, bool, Compiled)> {
    let program = parse_program(src).unwrap();
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut out = Vec::new();
    for engine in [Engine::TreeWalk, Engine::Tape, Engine::ParTape] {
        for fuse in [false, true] {
            let compiled = compile(
                &program,
                &env,
                &CompileOptions {
                    engine,
                    fuse,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            out.push((engine, fuse, compiled));
        }
    }
    out
}

fn run_at(
    compiled: &Compiled,
    inputs: &HashMap<String, ArrayBuf>,
    threads: usize,
    limits: Limits,
) -> Result<Option<u64>, String> {
    hermetic();
    let funcs = FuncTable::new();
    let opts = RunOptions {
        threads: Some(threads),
        limits,
        faults: None,
        ceiling: None,
    };
    match run_with_options(compiled, inputs, &funcs, &opts) {
        Ok(out) => Ok(out.fuel_left),
        Err(e) => Err(format!("{e:?}")),
    }
}

/// The soundness oracle over the whole shipped suite: at-certificate
/// budgets succeed everywhere; exact certificates are tight from both
/// sides (zero fuel left at-cert, failure one unit under, for fuel and
/// memory alike).
#[test]
fn certificates_are_sound_and_tight_across_engines() {
    for (name, src, shapes) in &suite() {
        for n in [4i64, 6, 16] {
            let inputs = inputs_for(shapes, n);
            let builds = builds(src, n);
            let cert = &builds[0].2.cert;
            assert!(cert.is_closed(), "{name} n={n}: certificate must close");
            let fuel = cert.fuel_value().unwrap();
            let mem = cert.mem_value().unwrap();
            let exact = cert.is_exact();
            let rendered = cert.render();
            for (engine, fuse, compiled) in &builds {
                assert_eq!(
                    compiled.cert.render(),
                    rendered,
                    "{name} n={n}: certificate differs for {engine:?} fuse={fuse}"
                );
                let threads: &[usize] = if *engine == Engine::ParTape {
                    &THREADS
                } else {
                    &[1]
                };
                for &t in threads {
                    let at = Limits {
                        fuel: Some(fuel),
                        mem_bytes: Some(mem),
                    };
                    let label = format!("{name} n={n} {engine:?} fuse={fuse} @{t}t");
                    match run_at(compiled, &inputs, t, at) {
                        Ok(left) => {
                            if exact {
                                assert_eq!(
                                    left,
                                    Some(0),
                                    "{label}: exact certificate leaves zero fuel"
                                );
                            }
                        }
                        Err(e) => panic!("{label}: at-certificate run must succeed: {e}"),
                    }
                    if exact && fuel > 0 {
                        let short = Limits {
                            fuel: Some(fuel - 1),
                            mem_bytes: None,
                        };
                        let got = run_at(compiled, &inputs, t, short);
                        assert!(
                            matches!(&got, Err(e) if e.contains("FuelExhausted")),
                            "{label}: one fuel under the certificate must trip: {got:?}"
                        );
                    }
                    if exact && mem > 0 {
                        let short = Limits {
                            fuel: None,
                            mem_bytes: Some(mem - 1),
                        };
                        let got = run_at(compiled, &inputs, t, short);
                        assert!(
                            matches!(&got, Err(e) if e.contains("MemLimitExceeded")),
                            "{label}: one byte under the certificate must trip: {got:?}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Admission is a pure function of (certificate, request): for a
    /// random program and parameter rung, a server's full verdict for
    /// budgets one under, exactly at, and absent is bit-identical at
    /// every worker-thread count and stripe width.
    #[test]
    fn admission_decisions_are_pure_across_threads_and_stripes(seed in any::<u64>()) {
        hermetic();
        let suite = suite();
        let (name, src, _) = &suite[(seed % suite.len() as u64) as usize];
        let n = 4 + (seed / 7 % 13) as i64;
        let program = parse_program(src).unwrap();
        let env = ConstEnv::from_pairs([("n", n)]);
        let cert = compile(&program, &env, &CompileOptions::default())
            .unwrap()
            .cert;
        prop_assert!(cert.is_closed(), "{} n={}: closed", name, n);
        let fuel = cert.fuel_value().unwrap();

        let budgets: [Option<u64>; 3] = [Some(fuel.saturating_sub(1)), Some(fuel), None];
        type Verdict = (String, Option<String>, Option<u64>);
        let mut verdicts: Vec<Vec<Verdict>> = Vec::new();
        for (threads, stripes) in [(1, 1), (2, 2), (4, 4), (8, 8), (2, 8), (8, 1)] {
            let server = Server::new(ServeOptions {
                threads,
                stripes,
                ..ServeOptions::default()
            });
            let mut row = Vec::new();
            for (k, budget) in budgets.iter().enumerate() {
                let mut r = Request::new(format!("q{k}"), src.as_str());
                r.params.push(("n".to_string(), n));
                r.fuel = *budget;
                let resp = server.handle(&r);
                row.push((resp.status.as_str().to_string(), resp.error, resp.fuel_left));
            }
            verdicts.push(row);
        }
        for row in &verdicts[1..] {
            prop_assert_eq!(
                row, &verdicts[0],
                "{} n={}: admission verdicts must not depend on threads/stripes", name, n
            );
        }
        // Exact certificates convert the starved rung into a proved
        // rejection; inexact ones leave it to the meter. Either way
        // the at-cert rung always completes.
        let at_cert = &verdicts[0][1];
        prop_assert_eq!(at_cert.0.as_str(), "ok");
        if cert.is_exact() {
            let starved = &verdicts[0][0];
            prop_assert_eq!(starved.0.as_str(), "over-certificate");
            prop_assert_eq!(at_cert.2, Some(0), "tight at-cert run");
        }
    }
}

/// The user-facing `cost ...` report lines for every shipped program,
/// pinned byte-for-byte. Six close exactly with symbolic polynomials;
/// Gauss–Seidel (`sor`) closes as an upper bound — its in-place
/// `bigupd` unit is bulk-charged. Regenerate with `UPDATE_GOLDEN=1`.
#[test]
fn cost_report_lines_match_golden() {
    let mut rendered = String::new();
    for (name, src, _) in &suite() {
        let program = parse_program(src).unwrap();
        let env = ConstEnv::from_pairs([("n", 16)]);
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        rendered.push_str(&format!(
            "{name} n=16: {}\n",
            compiled.report.cost.as_deref().unwrap()
        ));
    }
    let golden_path = "tests/golden/cost_report.txt";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, want,
        "cost lines drifted from {golden_path} (regenerate with UPDATE_GOLDEN=1 if intended)"
    );
}
