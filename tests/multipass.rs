//! End-to-end loop splitting (§8.1.3): a real program whose flow edges
//! mix `(<)` and `(>)` acyclically, forcing the scheduler to split the
//! loop into passes — and compile-error paths of the pipeline.

use std::collections::HashMap;

use hac_core::pipeline::{compile, compile_and_run, CompileError, CompileOptions};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;

/// Three interleaved clause families over one index:
/// * A writes `3i−2`;
/// * B reads A at an *earlier* instance (edge A→B `(<)`);
/// * C reads B at a *later* instance (edge B→C `(>)`).
///
/// No single direction satisfies both, but the graph is acyclic, so the
/// §8.1.3 multipass algorithm splits the loop instead of thunking.
const SRC: &str = r#"
param n;
letrec* a = array (1,3*n)
   ([ 3*i-2 := i | i <- [1..n] ] ++
    [ 3*i-1 := if i == 1 then 100 else a!(3*(i-1)-2) + 1 | i <- [1..n] ] ++
    [ 3*i := a!(3*(i+1)-1) * 10 | i <- [1..n-1] ] ++
    [ 3*n := 0 ]);
"#;

#[test]
fn mixed_direction_program_splits_into_passes() {
    let n = 6;
    let env = ConstEnv::from_pairs([("n", n)]);
    let program = parse_program(SRC).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let report = &compiled.report.arrays[0];
    assert!(
        report.outcome.contains("thunkless"),
        "multipass, not thunks: {}",
        report.outcome
    );
    // The loop must appear more than once (split into passes).
    let loop_headers = report.outcome.matches("for i").count();
    assert!(loop_headers >= 2, "expected ≥2 passes:\n{}", report.outcome);

    // Semantics: equals the thunked baseline.
    let out = compile_and_run(SRC, &env, &HashMap::new()).unwrap();
    assert_eq!(out.counters.thunked.thunks_allocated, 0);
    let a = out.array("a");
    // Spot-check against the recurrences: A(i) = i,
    // B(i) = i==1 ? 100 : A(i−1)+1 = i, C(i) = B(i+1)·10.
    for i in 1..=n {
        assert_eq!(a.get("a", &[3 * i - 2]).unwrap(), i as f64);
        let b = if i == 1 { 100.0 } else { i as f64 };
        assert_eq!(a.get("a", &[3 * i - 1]).unwrap(), b);
    }
    for i in 1..n {
        let b_next = (i + 1) as f64;
        assert_eq!(a.get("a", &[3 * i]).unwrap(), b_next * 10.0);
    }
    assert_eq!(a.get("a", &[3 * n]).unwrap(), 0.0);
}

#[test]
fn duplicate_name_rejected() {
    let src = "param n;\nlet a = array (1,n) [ i := 0 | i <- [1..n] ];\n\
               let a = array (1,n) [ i := 1 | i <- [1..n] ];\n";
    let env = ConstEnv::from_pairs([("n", 3)]);
    let err = compile(
        &parse_program(src).unwrap(),
        &env,
        &CompileOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CompileError::DuplicateName(n) if n == "a"));
}

#[test]
fn unknown_base_rejected() {
    let src = "param n;\nb = bigupd nope [ i := 0 | i <- [1..n] ];\n";
    let env = ConstEnv::from_pairs([("n", 3)]);
    let err = compile(
        &parse_program(src).unwrap(),
        &env,
        &CompileOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CompileError::UnknownBase(n) if n == "nope"));
}

#[test]
fn unbound_parameter_rejected() {
    let src = "param n;\nlet a = array (1,n) [ i := 0 | i <- [1..n] ];\n";
    let err = compile(
        &parse_program(src).unwrap(),
        &ConstEnv::new(),
        &CompileOptions::default(),
    )
    .unwrap_err();
    // Surfaces as the analysis's non-constant-bound error.
    assert!(matches!(err, CompileError::Analysis(_)), "{err}");
}

#[test]
fn unschedulable_update_rejected() {
    // A flow cycle inside a bigupd: b needs both neighbors' new values.
    let src = "param n;\ninput a (1,n);\n\
               b = bigupd a [ i := b!(i-1) + b!(i+1) | i <- [2..n-1] ];\n";
    let env = ConstEnv::from_pairs([("n", 8)]);
    let err = compile(
        &parse_program(src).unwrap(),
        &env,
        &CompileOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, CompileError::UnschedulableUpdate { .. }),
        "{err}"
    );
}

#[test]
fn use_after_inplace_update_rejected() {
    // `c` reads `a` after `b = bigupd a` consumed its storage in
    // place: the compiler must reject (single-threadedness, §9).
    let src = "param n;\ninput a (1,n);\n\
               b = bigupd a [ i := a!i * 2 | i <- [1..n] ];\n\
               let c = array (1,n) [ i := a!i + 1 | i <- [1..n] ];\n";
    let env = ConstEnv::from_pairs([("n", 4)]);
    let err = compile(
        &parse_program(src).unwrap(),
        &env,
        &CompileOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, CompileError::UseAfterUpdate { ref array, .. } if array == "a"),
        "{err}"
    );

    // Reading the update's *result* is the blessed pattern.
    let ok = "param n;\ninput a (1,n);\n\
              b = bigupd a [ i := a!i * 2 | i <- [1..n] ];\n\
              let c = array (1,n) [ i := b!i + 1 | i <- [1..n] ];\n";
    assert!(compile(
        &parse_program(ok).unwrap(),
        &env,
        &CompileOptions::default()
    )
    .is_ok());
}
