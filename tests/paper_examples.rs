//! The paper's worked examples, reproduced end to end: §5's dependence
//! graphs, §8's scheduling cases, and §9's update strategies
//! (experiments E1, E2, E7–E10, E14, E15 of DESIGN.md).

use hac_analysis::analyze::analyze_bigupd;
use hac_analysis::depgraph::flow_dependences;
use hac_analysis::refs::collect_refs;
use hac_analysis::search::TestPolicy;
use hac_lang::ast::ClauseId;
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::parse_comp;
use hac_schedule::plan::{Dirn, ScheduleOutcome, Step, ThunkReason};
use hac_schedule::scheduler::schedule;
use hac_schedule::split::{plan_update, SplitAction, UpdateStrategy};

fn analyzed(src: &str, env: &ConstEnv) -> (hac_lang::ast::Comp, Vec<hac_analysis::DepEdge>) {
    let mut c = parse_comp(src).unwrap();
    number_clauses(&mut c);
    let refs = collect_refs(&c, "a", env).unwrap();
    let flow = flow_dependences(&refs, "a", &TestPolicy::default());
    (c, flow.edges)
}

/// §5 example 1: `a = array (1,300) [* [3i := ...] ++
/// [3i-1 := ... a!(3(i-1)) ...] ++ [3i-2 := ... a!(3i) ...] | i <- [1..100] *]`
/// The paper derives edges 1→2(<) and 1→3(=), a single forward loop.
#[test]
fn section5_example1() {
    let env = ConstEnv::new();
    let (c, edges) = analyzed(
        "[* [ 3*i := 1 ] ++ [ 3*i-1 := a!(3*(i-1)) ] ++ [ 3*i-2 := a!(3*i) ] \
         | i <- [1..100] *]",
        &env,
    );
    let mut rendered: Vec<String> = edges
        .iter()
        .map(|e| format!("{}→{}{}", e.src, e.dst, e.dv))
        .collect();
    rendered.sort();
    assert_eq!(rendered, vec!["c0→c1(<)", "c0→c2(=)"]);

    let plan = match schedule(&c, &edges) {
        ScheduleOutcome::Thunkless(p) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        plan.loop_count(),
        1,
        "one loop suffices:\n{}",
        plan.render()
    );
    match &plan.steps[0] {
        Step::Loop { dirn, .. } => {
            assert_eq!(*dirn, Dirn::Forward, "the (<) edge forces a forward loop")
        }
        other => panic!("{other:?}"),
    }
}

/// §5 example 2: within one `i` instance the inner `j` loop must run
/// backward (the (=,>) edge); the outer loop forward.
#[test]
fn section5_example2() {
    let env = ConstEnv::from_pairs([("m", 10), ("n", 20)]);
    let (c, edges) = analyzed(
        "[* [ (i,j) := a!(i,j+1) + a!(i-1,j) ] | i <- [1..m], j <- [1..n-1] *] ++ \
         [ (i,n) := 1 | i <- [1..m] ]",
        &env,
    );
    // Self edges on clause 0: (=,>) from the east read, (<,=) from the
    // north read.
    let self_edges: Vec<String> = edges
        .iter()
        .filter(|e| e.src == ClauseId(0) && e.dst == ClauseId(0))
        .map(|e| e.dv.to_string())
        .collect();
    assert!(self_edges.contains(&"(=,>)".to_string()), "{self_edges:?}");
    assert!(self_edges.contains(&"(<,=)".to_string()), "{self_edges:?}");

    let plan = match schedule(&c, &edges) {
        ScheduleOutcome::Thunkless(p) => p,
        other => panic!("{other:?}"),
    };
    // Outer forward, inner backward.
    fn outer_inner(steps: &[Step]) -> Option<(Dirn, Dirn)> {
        for s in steps {
            if let Step::Loop { dirn, body, .. } = s {
                for b in body {
                    if let Step::Loop { dirn: d2, .. } = b {
                        return Some((*dirn, *d2));
                    }
                }
                if let Some(found) = outer_inner(body) {
                    return Some(found);
                }
            }
        }
        None
    }
    assert_eq!(
        outer_inner(&plan.steps),
        Some((Dirn::Forward, Dirn::Backward)),
        "{}",
        plan.render()
    );
}

/// §8.1.2's acyclic example — A→B(<), B→C(>), A→C(=) — schedules as
/// two passes, not three.
#[test]
fn section8_acyclic_collapses_to_two_passes() {
    use hac_analysis::depgraph::{DepEdge, DepKind};
    use hac_analysis::direction::{Dir, DirVec};
    use hac_analysis::search::Confidence;

    let mut c = parse_comp("[* [ 3*i := 0 ] ++ [ 3*i+1 := 0 ] ++ [ 3*i+2 := 0 ] | i <- [1..10] *]")
        .unwrap();
    number_clauses(&mut c);
    let edge = |src: u32, dst: u32, d: Dir| DepEdge {
        src: ClauseId(src),
        dst: ClauseId(dst),
        kind: DepKind::Flow,
        array: "a".into(),
        dv: DirVec(vec![d]),
        confidence: Confidence::Possible,
        distance: None,
        src_read: None,
        dst_read: None,
    };
    let edges = vec![
        edge(0, 1, Dir::Lt),
        edge(1, 2, Dir::Gt),
        edge(0, 2, Dir::Eq),
    ];
    let plan = match schedule(&c, &edges) {
        ScheduleOutcome::Thunkless(p) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(plan.loop_count(), 2, "{}", plan.render());
    hac_schedule::check::check_plan(&plan, &c, &edges, &ConstEnv::new()).unwrap();
}

/// §8.1.2's unschedulable cycle — A→B(<), B→A(>) — needs thunks.
#[test]
fn section8_thunk_fallback() {
    use hac_analysis::depgraph::{DepEdge, DepKind};
    use hac_analysis::direction::{Dir, DirVec};
    use hac_analysis::search::Confidence;

    let mut c = parse_comp("[* [ 2*i := 0 ] ++ [ 2*i+1 := 0 ] | i <- [1..10] *]").unwrap();
    number_clauses(&mut c);
    let edge = |src: u32, dst: u32, d: Dir| DepEdge {
        src: ClauseId(src),
        dst: ClauseId(dst),
        kind: DepKind::Flow,
        array: "a".into(),
        dv: DirVec(vec![d]),
        confidence: Confidence::Possible,
        distance: None,
        src_read: None,
        dst_read: None,
    };
    match schedule(&c, &[edge(0, 1, Dir::Lt), edge(1, 0, Dir::Gt)]) {
        ScheduleOutcome::NeedsThunks(ThunkReason::MixedDirectionCycle { .. }) => {}
        other => panic!("expected thunk fallback, got {other:?}"),
    }
}

/// §9 row swap: anti cycle broken by one precopied row.
#[test]
fn section9_row_swap() {
    let env = ConstEnv::from_pairs([("n", 16)]);
    let mut c =
        parse_comp("[ (1,j) := a!(2,j) | j <- [1..n] ] ++ [ (2,j) := a!(1,j) | j <- [1..n] ]")
            .unwrap();
    number_clauses(&mut c);
    let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
    let plan = plan_update(&c, &u).unwrap();
    match &plan.strategy {
        UpdateStrategy::Split(actions) => {
            assert_eq!(actions.len(), 1);
            assert!(matches!(actions[0], SplitAction::Precopy { .. }));
        }
        other => panic!("{other:?}"),
    }
}

/// §9 Jacobi: the `(=,>)` self cycle is broken by a scalar carry and
/// the `(>,=)` one by a row-sized buffer — "the temporary must be a
/// vector large enough to hold all the live values that may be
/// overwritten by the inner loop".
#[test]
fn section9_jacobi_node_splitting() {
    let env = ConstEnv::from_pairs([("n", 16)]);
    let mut c = parse_comp(
        "[ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
         | i <- [2..n-1], j <- [2..n-1] ]",
    )
    .unwrap();
    number_clauses(&mut c);
    let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
    // The paper's four anti self edges.
    let mut dvs: Vec<String> = u
        .anti
        .edges
        .iter()
        .filter(|e| !e.dv.is_loop_independent())
        .map(|e| e.dv.to_string())
        .collect();
    dvs.sort();
    assert_eq!(dvs, vec!["(<,=)", "(=,<)", "(=,>)", "(>,=)"]);
    let plan = plan_update(&c, &u).unwrap();
    match &plan.strategy {
        UpdateStrategy::Split(actions) => {
            let mut levels: Vec<usize> = actions
                .iter()
                .map(|a| match a {
                    SplitAction::CarryBuffer { level, lag: 1, .. } => *level,
                    other => panic!("{other:?}"),
                })
                .collect();
            levels.sort();
            assert_eq!(levels, vec![0, 1]);
        }
        other => panic!("{other:?}"),
    }
}

/// §9 Gauss–Seidel / SOR (LK23 wavefront): "the true dependences can be
/// satisfied without compiling thunks, and the antidependences without
/// copying" — all four self edges agree with forward/forward loops.
#[test]
fn section9_sor_in_place() {
    let env = ConstEnv::from_pairs([("n", 16)]);
    let mut c = parse_comp(
        "[ (i,j) := (b!(i-1,j) + b!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
         | i <- [2..n-1], j <- [2..n-1] ]",
    )
    .unwrap();
    number_clauses(&mut c);
    let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
    // δ(<,=), δ(=,<) (flow on b) and δ̄(<,=), δ̄(=,<) (anti on a).
    let flow_dvs: Vec<String> = u.flow.edges.iter().map(|e| e.dv.to_string()).collect();
    assert!(flow_dvs.contains(&"(<,=)".to_string()), "{flow_dvs:?}");
    assert!(flow_dvs.contains(&"(=,<)".to_string()), "{flow_dvs:?}");
    let anti_dvs: Vec<String> = u
        .anti
        .edges
        .iter()
        .filter(|e| !e.dv.is_loop_independent())
        .map(|e| e.dv.to_string())
        .collect();
    assert!(anti_dvs.contains(&"(<,=)".to_string()), "{anti_dvs:?}");
    assert!(anti_dvs.contains(&"(=,<)".to_string()), "{anti_dvs:?}");
    let plan = plan_update(&c, &u).unwrap();
    assert_eq!(plan.strategy, UpdateStrategy::InPlace);
}

/// §9 row scale and SAXPY: in place with zero copies.
#[test]
fn section9_scale_and_saxpy_in_place() {
    let env = ConstEnv::from_pairs([("n", 16), ("k", 1), ("m", 2)]);
    for src in [
        "[ (k,j) := 2.5 * a!(k,j) | j <- [1..n] ]",
        "[ (k,j) := a!(k,j) + 3 * a!(m,j) | j <- [1..n] ]",
    ] {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
        let plan = plan_update(&c, &u).unwrap();
        assert_eq!(plan.strategy, UpdateStrategy::InPlace, "{src}");
    }
}
