//! The deterministic serve simulator: randomly generated multi-tenant
//! workloads — N tenants with assorted weights sending mixes of the
//! `programs/*.hac` kernels, some comfortably budgeted, some starved —
//! are pushed through every serving path the crate offers:
//!
//!   (a) sequential `Server::handle` calls in the scheduler's
//!       predicted admission order,
//!   (b) `Server::run_batch` at 1, 2, 4, and 8 workers,
//!   (c) the TCP daemon over a loopback socket.
//!
//! Every path must produce **bit-identical responses** per request —
//! status, cache hit/miss, answer digest, remaining fuel, fault and
//! work counters, admission ordinal — and the batch path's *realized*
//! admission order must equal `Server::predicted_order`. Nothing here
//! reads a clock: the whole simulation is a pure function of the
//! proptest seed.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use hac::serve::daemon::{self, DaemonOptions};
use hac::serve::{Request, Response, ServeOptions, Server};
use hac_workloads::XorShift;
use proptest::prelude::*;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The kernel menu: every `programs/*.hac` file, with a size range
/// each stays cheap in.
struct Kernel {
    path: &'static str,
    n_lo: i64,
    n_hi: i64,
}

const KERNELS: [Kernel; 3] = [
    Kernel {
        path: "programs/wavefront.hac",
        n_lo: 4,
        n_hi: 9,
    },
    Kernel {
        path: "programs/tridiag.hac",
        n_lo: 4,
        n_hi: 16,
    },
    Kernel {
        path: "programs/sor.hac",
        n_lo: 4,
        n_hi: 8,
    },
];

/// Generate one workload: up to 4 tenants with weights 1..=5, 6..=14
/// requests mixing kernels, parameters, seeds, and budgets. Roughly a
/// quarter of the requests are starved (single-digit fuel, guaranteed
/// `limit`), and one request in each workload is a compile error, so
/// every status class flows through every path.
fn workload(seed: u64, sources: &[String; 3]) -> Vec<Request> {
    let mut rng = XorShift::new(seed | 1);
    let tenant_count = 1 + (rng.next_u64() % 4) as usize;
    let tenants: Vec<(String, u64)> = (0..tenant_count)
        .map(|t| (format!("tenant-{t}"), 1 + rng.next_u64() % 5))
        .collect();
    let count = 6 + (rng.next_u64() % 9) as usize;
    let broken_at = rng.next_u64() % count as u64;
    (0..count)
        .map(|i| {
            let (tenant, weight) = &tenants[(rng.next_u64() % tenant_count as u64) as usize];
            let which = (rng.next_u64() % 3) as usize;
            let k = &KERNELS[which];
            let mut req = if i as u64 == broken_at {
                Request::new(format!("r{i}"), "param n;\nlet a = ")
            } else {
                Request::new(format!("r{i}"), &sources[which])
            };
            req.params.push((
                "n".to_string(),
                k.n_lo + (rng.next_u64() % (k.n_hi - k.n_lo + 1) as u64) as i64,
            ));
            // Keep seeds under 2^32: the wire format carries them as
            // f64 and the round-trip must be exact.
            req.seed = rng.next_u64() % (1 << 32);
            req.fuel = if rng.next_u64().is_multiple_of(4) {
                Some(3 + rng.next_u64() % 15) // starved: exhausts mid-run
            } else {
                Some(100_000) // comfortable
            };
            req.tenant = Some(tenant.clone());
            req.weight = Some(*weight);
            req
        })
        .collect()
}

fn server() -> Server {
    // Uncapped ceiling: per-request budgets decide every outcome, so
    // outcomes are independent of sibling scheduling and the parity
    // assertion is exact.
    Server::new(ServeOptions::default())
}

/// A response collapsed to its wire line — covers every field the
/// protocol exposes, including ordinal, cache verdict, and digests.
fn line(resp: &Response) -> String {
    resp.to_json().to_string()
}

/// Path (a): fresh server, sequential `handle` in predicted order.
/// Returns wire lines indexed by the request's position in `reqs`.
fn run_sequential(reqs: &[Request]) -> Vec<String> {
    let order = Server::predicted_order(reqs);
    let server = server();
    let mut out = vec![String::new(); reqs.len()];
    for &i in &order {
        out[i] = line(&server.handle(&reqs[i]));
    }
    out
}

/// Path (c): daemon over a loopback socket, one connection, requests
/// written in predicted order. Returns wire lines by request position.
fn run_daemon(reqs: &[Request]) -> Vec<String> {
    run_daemon_with(server(), reqs)
}

fn run_daemon_with(server: Server, reqs: &[Request]) -> Vec<String> {
    let order = Server::predicted_order(reqs);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon = daemon::spawn(
        Arc::new(server),
        listener,
        DaemonOptions {
            max_conns: 2,
            ..DaemonOptions::default()
        },
    )
    .expect("spawn daemon");
    let stream = TcpStream::connect(daemon.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out_stream = stream;
    let mut out = vec![String::new(); reqs.len()];
    for &i in &order {
        writeln!(out_stream, "{}", reqs[i].to_json()).expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        out[i] = resp.trim_end().to_string();
    }
    out_stream
        .write_all(b"{\"control\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("shutdown ack");
    assert!(ack.contains(r#""ok":true"#), "clean shutdown ack: {ack}");
    drop(out_stream);
    daemon.join().expect("daemon exits cleanly");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_serving_paths_agree_request_by_request(seed in any::<u64>()) {
        let sources: [String; 3] = [
            std::fs::read_to_string(KERNELS[0].path).expect("wavefront.hac"),
            std::fs::read_to_string(KERNELS[1].path).expect("tridiag.hac"),
            std::fs::read_to_string(KERNELS[2].path).expect("sor.hac"),
        ];
        let reqs = workload(seed, &sources);
        let predicted = Server::predicted_order(&reqs);
        let want = run_sequential(&reqs);

        // (b) run_batch at every worker count: responses (returned in
        // input order) must be bit-identical to the sequential path,
        // and the realized admission order — the requests sorted by
        // their stamped ordinals — must equal the prediction.
        for workers in WORKERS {
            let srv = server();
            let out = srv.run_batch(&reqs, workers);
            for (i, resp) in out.iter().enumerate() {
                prop_assert_eq!(
                    &line(resp), &want[i],
                    "seed {}: batch@{} request {} diverged from sequential",
                    seed, workers, reqs[i].id
                );
            }
            let mut realized: Vec<usize> = (0..reqs.len()).collect();
            realized.sort_by_key(|&i| out[i].admitted.expect("every response is stamped"));
            prop_assert_eq!(
                &realized, &predicted,
                "seed {}: batch@{} realized admission order vs predicted", seed, workers
            );
        }

        // (c) the daemon path speaks the same lines over TCP.
        let daemon_lines = run_daemon(&reqs);
        for (i, got) in daemon_lines.iter().enumerate() {
            prop_assert_eq!(
                got, &want[i],
                "seed {}: daemon request {} diverged from sequential", seed, reqs[i].id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Overload shedding is part of the simulator contract: with a
    /// watermark armed, `run_batch` sheds exactly the requests
    /// `Server::predicted_schedule` says it will (`overloaded` status,
    /// clock-free `retry_after_ops` hint equal to the survivors' total
    /// fuel), and every survivor's response is byte-identical to a
    /// batch in which the shed requests never arrived at all.
    #[test]
    fn shedding_matches_the_prediction_and_spares_survivors_byte_for_byte(seed in any::<u64>()) {
        let sources: [String; 3] = [
            std::fs::read_to_string(KERNELS[0].path).expect("wavefront.hac"),
            std::fs::read_to_string(KERNELS[1].path).expect("tridiag.hac"),
            std::fs::read_to_string(KERNELS[2].path).expect("sor.hac"),
        ];
        let reqs = workload(seed, &sources);
        let watermark = reqs.len() / 2 + 1;
        let schedule = hac::serve::Server::predicted_schedule(&reqs, watermark);
        prop_assert_eq!(
            schedule.shed.len(), reqs.len() - watermark,
            "seed {}: shed down to exactly the watermark", seed
        );
        let backlog: u64 = schedule.order.iter().map(|&i| reqs[i].fuel.unwrap_or(0)).sum();
        let kept: Vec<Request> = (0..reqs.len())
            .filter(|i| !schedule.shed.contains(i))
            .map(|i| reqs[i].clone())
            .collect();

        for workers in WORKERS {
            let srv = Server::new(ServeOptions {
                shed_watermark: watermark,
                ..ServeOptions::default()
            });
            let out = srv.run_batch(&reqs, workers);
            for &i in &schedule.shed {
                prop_assert_eq!(
                    out[i].status, hac::serve::Status::Overloaded,
                    "seed {}: batch@{} request {} predicted shed", seed, workers, reqs[i].id
                );
                prop_assert_eq!(
                    out[i].retry_after_ops, Some(backlog),
                    "seed {}: batch@{} shed hint for {}", seed, workers, reqs[i].id
                );
            }
            let stats = srv.server_stats();
            prop_assert_eq!(stats.shed, schedule.shed.len() as u64);

            // Survivors must be untouched by the sheds: byte-identical
            // to a fresh batch of only the survivors.
            let srv2 = Server::new(ServeOptions {
                shed_watermark: watermark,
                ..ServeOptions::default()
            });
            let kept_out = srv2.run_batch(&kept, workers);
            let mut k = 0;
            for i in 0..reqs.len() {
                if schedule.shed.contains(&i) {
                    continue;
                }
                prop_assert_eq!(
                    &line(&out[i]), &line(&kept_out[k]),
                    "seed {}: batch@{} survivor {} perturbed by sheds",
                    seed, workers, reqs[i].id
                );
                k += 1;
            }

            // Realized admission order over the survivors equals the
            // watermarked prediction.
            let mut realized: Vec<usize> = schedule.order.clone();
            realized.sort_by_key(|&i| out[i].admitted.expect("survivors are stamped"));
            prop_assert_eq!(
                &realized, &schedule.order,
                "seed {}: batch@{} realized survivor order vs predicted", seed, workers
            );
        }
    }
}

/// Sliding-parameter workload over the bigupd-rooted poke kernels:
/// the first three requests pin a (miss, hit, delta) prelude, then a
/// random tail mixes exact repeats (hits), slides of the update-only
/// parameters (deltas), and fresh mesh sizes (misses). Budgets are
/// ample and the ceiling uncapped, so the realized classification is
/// exactly `Server::predicted_result_classes`.
fn sliding_workload(seed: u64, poke_src: &str, band_src: &str) -> Vec<Request> {
    let mut rng = XorShift::new(seed | 1);
    let poke = |id: String, n: i64, ui: i64, uj: i64, uv: i64| {
        let mut r = Request::new(id, poke_src);
        r.params = vec![
            ("n".to_string(), n),
            ("ui".to_string(), ui),
            ("uj".to_string(), uj),
            ("uv".to_string(), uv),
        ];
        r
    };
    let band = |id: String, n: i64, lo: i64, hi: i64, uv: i64| {
        let mut r = Request::new(id, band_src);
        r.params = vec![
            ("n".to_string(), n),
            ("lo".to_string(), lo),
            ("hi".to_string(), hi),
            ("uv".to_string(), uv),
        ];
        r
    };
    let mut reqs = vec![
        poke("p0".to_string(), 6, 3, 4, 55), // cold: miss
        poke("p1".to_string(), 6, 3, 4, 55), // exact repeat: hit
        poke("p2".to_string(), 6, 2, 5, 99), // slid poke: delta
    ];
    let count = 5 + (rng.next_u64() % 8) as usize;
    for i in 0..count {
        let r = match rng.next_u64() % 4 {
            0 => poke(format!("t{i}"), 6, 3, 4, 55), // repeat of the prelude
            1 => poke(
                format!("t{i}"),
                6,
                1 + (rng.next_u64() % 6) as i64,
                1 + (rng.next_u64() % 6) as i64,
                (rng.next_u64() % 100) as i64,
            ),
            2 => band(
                format!("t{i}"),
                8,
                1 + (rng.next_u64() % 8) as i64,
                1 + (rng.next_u64() % 8) as i64,
                (rng.next_u64() % 100) as i64,
            ),
            // A fresh mesh size starts a new family: always a miss.
            _ => poke(format!("t{i}"), 4 + (rng.next_u64() % 5) as i64, 2, 2, 7),
        };
        reqs.push(r);
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental serving rides the same simulator contract: under a
    /// repeated-and-sliding-parameter workload, sequential `handle`,
    /// `run_batch` at every worker count, and the loopback daemon all
    /// speak byte-identical lines (which now carry `result_cache` and
    /// `delta_elems`), and the classification each request realizes
    /// equals the pure prediction.
    #[test]
    fn sliding_workloads_classify_identically_on_every_path(seed in any::<u64>()) {
        let poke_src = std::fs::read_to_string("programs/incremental/jacobi_poke.hac").expect("jacobi_poke");
        let band_src = std::fs::read_to_string("programs/incremental/band_poke.hac").expect("band_poke");
        let reqs = sliding_workload(seed, &poke_src, &band_src);
        // Pin the empty fault plan: an ambient HAC_FAULT_PLAN would
        // route every request around the result cache (by design), and
        // this test is about the classes.
        let options = ServeOptions {
            faults: Some(hac_runtime::governor::FaultPlan::default()),
            ..ServeOptions::default()
        };

        let predicted = Server::predicted_result_classes(&options, &reqs);
        prop_assert_eq!(predicted[0], Some(hac::serve::ResultClass::Miss));
        prop_assert_eq!(predicted[1], Some(hac::serve::ResultClass::Hit));
        prop_assert_eq!(predicted[2], Some(hac::serve::ResultClass::Delta));

        // Path (a), collecting classifications alongside wire lines.
        let order = Server::predicted_order(&reqs);
        let srv = Server::new(options.clone());
        let mut want = vec![String::new(); reqs.len()];
        let mut realized = vec![None; reqs.len()];
        for &i in &order {
            let resp = srv.handle(&reqs[i]);
            realized[i] = resp.result_cache;
            want[i] = line(&resp);
        }
        prop_assert_eq!(&realized, &predicted, "seed {}: realized vs predicted classes", seed);

        for workers in WORKERS {
            let srv = Server::new(options.clone());
            let out = srv.run_batch(&reqs, workers);
            for (i, resp) in out.iter().enumerate() {
                prop_assert_eq!(
                    &line(resp), &want[i],
                    "seed {}: batch@{} request {} diverged from sequential",
                    seed, workers, reqs[i].id
                );
            }
        }

        let daemon_lines = run_daemon_with(Server::new(options), &reqs);
        for (i, got) in daemon_lines.iter().enumerate() {
            prop_assert_eq!(
                got, &want[i],
                "seed {}: daemon request {} diverged from sequential", seed, reqs[i].id
            );
        }
    }
}

/// The daemon's per-connection tenant attribution: a connection that
/// declares `{"control":"tenant",...}` stamps that tenant onto every
/// later request that names none of its own, and `{"control":"stats"}`
/// reports the served counts per tenant.
#[test]
fn daemon_attributes_untagged_requests_to_the_connection_tenant() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon = daemon::spawn(Arc::new(server()), listener, DaemonOptions::default())
        .expect("spawn daemon");
    let stream = TcpStream::connect(daemon.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = stream;
    let mut recv = || {
        let mut s = String::new();
        reader.read_line(&mut s).expect("recv");
        s
    };

    out.write_all(b"{\"control\":\"tenant\",\"tenant\":\"acme\"}\n")
        .unwrap();
    assert!(recv().contains(r#""ok":true"#));

    let src = std::fs::read_to_string("programs/wavefront.hac").unwrap();
    let mut req = Request::new("conn-default", &src);
    req.params.push(("n".to_string(), 4));
    writeln!(out, "{}", req.to_json()).unwrap();
    let resp = recv();
    assert!(
        resp.contains(r#""tenant":"acme""#),
        "connection tenant applied: {resp}"
    );

    // An explicit tenant on the request wins over the connection's.
    req.id = "explicit".to_string();
    req.tenant = Some("globex".to_string());
    writeln!(out, "{}", req.to_json()).unwrap();
    let resp = recv();
    assert!(
        resp.contains(r#""tenant":"globex""#),
        "request tenant wins: {resp}"
    );

    out.write_all(b"{\"control\":\"stats\"}\n").unwrap();
    let stats = recv();
    assert!(
        stats.contains(r#""acme":1"#) && stats.contains(r#""globex":1"#),
        "per-tenant counts: {stats}"
    );

    out.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
    assert!(recv().contains(r#""ok":true"#));
    daemon.join().expect("clean shutdown");
}

/// The bounded accept loop: more concurrent connections than
/// `max_conns` all still get served (excess waits in the backlog), and
/// the daemon drains them before shutting down.
#[test]
fn daemon_serves_more_connections_than_slots() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon = daemon::spawn(
        Arc::new(server()),
        listener,
        DaemonOptions {
            max_conns: 2,
            ..DaemonOptions::default()
        },
    )
    .expect("spawn daemon");
    let addr = daemon.addr();
    let src = std::fs::read_to_string("programs/wavefront.hac").unwrap();

    let digests: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let src = &src;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut out = stream;
                    let mut req = Request::new(format!("conn{c}"), src);
                    req.params.push(("n".to_string(), 6));
                    writeln!(out, "{}", req.to_json()).expect("send");
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("recv");
                    assert!(resp.contains(r#""status":"ok""#), "conn {c}: {resp}");
                    let key = r#""answer_digest":""#;
                    let at = resp.find(key).expect("digest present") + key.len();
                    resp[at..at + 16].to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Same program, same params: every connection saw the same answer.
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = stream;
    out.write_all(b"{\"control\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("ack");
    assert!(ack.contains(r#""ok":true"#));
    daemon.join().expect("clean shutdown");
}
