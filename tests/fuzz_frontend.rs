//! Front-end robustness: the lexer/parser must return errors — never
//! panic — on arbitrary input, and the full pipeline must reject
//! malformed programs cleanly.

use proptest::prelude::*;

use hac_core::pipeline::{compile, CompileOptions};
use hac_lang::env::ConstEnv;
use hac_lang::parser::{parse_comp, parse_expr, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parser_never_panics_on_garbage(src in ".{0,200}") {
        let _ = parse_program(&src);
        let _ = parse_expr(&src);
        let _ = parse_comp(&src);
    }

    /// Token-soup built from the language's own vocabulary never panics
    /// (more likely than raw bytes to reach deep parser states).
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let"), Just("letrec*"), Just("array"), Just("param"),
                Just("input"), Just("bigupd"), Just("result"), Just("sum"),
                Just("reduce"), Just("[*"), Just("*]"), Just("["), Just("]"),
                Just("("), Just(")"), Just(":="), Just("<-"), Just(".."),
                Just("++"), Just("|"), Just(","), Just(";"), Just("="),
                Just("+"), Just("-"), Just("*"), Just("/"), Just("!"),
                Just("i"), Just("a"), Just("n"), Just("1"), Just("2"),
                Just("if"), Just("then"), Just("else"), Just("where"),
                Just("and"), Just("mod"), Just("in"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
        let _ = parse_comp(&src);
    }

    /// Whatever parses must also either compile or fail with a proper
    /// error (no panics) under a fixed environment.
    #[test]
    fn compile_never_panics_on_parsed_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let a = array (1,n)"),
                Just("[ i := 1 | i <- [1..n] ]"),
                Just("[ i := a!(i-1) | i <- [2..n] ]"),
                Just("++"),
                Just(";"),
                Just("param n;"),
                Just("input u (1,n);"),
                Just("let s = sum [ i | i <- [1..n] ];"),
            ],
            0..8,
        )
    ) {
        let src = toks.join("\n");
        if let Ok(program) = parse_program(&src) {
            let env = ConstEnv::from_pairs([("n", 4)]);
            let _ = compile(&program, &env, &CompileOptions::default());
        }
    }
}

#[test]
fn deeply_nested_parens_error_cleanly() {
    // Shallow nesting parses; pathological nesting is rejected by the
    // parser's depth guard instead of crashing the stack.
    let ok = format!("{}1{}", "(".repeat(100), ")".repeat(100));
    assert!(parse_expr(&ok).is_ok());
    let deep = format!("{}1{}", "(".repeat(5_000), ")".repeat(5_000));
    let err = parse_expr(&deep).unwrap_err();
    assert!(err.message.contains("nests deeper"), "{err}");
    let unbalanced = format!("{}1", "(".repeat(5_000));
    assert!(parse_expr(&unbalanced).is_err());
}
