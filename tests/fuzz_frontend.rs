//! Front-end robustness: the lexer/parser must return errors — never
//! panic — on arbitrary input, and the full pipeline must reject
//! malformed programs cleanly. Whatever survives to execution must
//! respect resource limits without panicking, on every engine.

use std::collections::HashMap;

use proptest::prelude::*;

use hac_core::pipeline::{compile, run_with_options, CompileOptions, Engine, RunOptions, Unit};
use hac_lang::env::ConstEnv;
use hac_lang::parser::{parse_comp, parse_expr, parse_program};
use hac_runtime::governor::Limits;
use hac_runtime::value::{ArrayBuf, FuncTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parser_never_panics_on_garbage(src in ".{0,200}") {
        let _ = parse_program(&src);
        let _ = parse_expr(&src);
        let _ = parse_comp(&src);
    }

    /// Token-soup built from the language's own vocabulary never panics
    /// (more likely than raw bytes to reach deep parser states).
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let"), Just("letrec*"), Just("array"), Just("param"),
                Just("input"), Just("bigupd"), Just("result"), Just("sum"),
                Just("reduce"), Just("[*"), Just("*]"), Just("["), Just("]"),
                Just("("), Just(")"), Just(":="), Just("<-"), Just(".."),
                Just("++"), Just("|"), Just(","), Just(";"), Just("="),
                Just("+"), Just("-"), Just("*"), Just("/"), Just("!"),
                Just("i"), Just("a"), Just("n"), Just("1"), Just("2"),
                Just("if"), Just("then"), Just("else"), Just("where"),
                Just("and"), Just("mod"), Just("in"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
        let _ = parse_comp(&src);
    }

    /// Whatever parses must also either compile or fail with a proper
    /// error (no panics) under a fixed environment.
    #[test]
    fn compile_never_panics_on_parsed_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let a = array (1,n)"),
                Just("[ i := 1 | i <- [1..n] ]"),
                Just("[ i := a!(i-1) | i <- [2..n] ]"),
                Just("++"),
                Just(";"),
                Just("param n;"),
                Just("input u (1,n);"),
                Just("let s = sum [ i | i <- [1..n] ];"),
            ],
            0..8,
        )
    ) {
        let src = toks.join("\n");
        if let Ok(program) = parse_program(&src) {
            let env = ConstEnv::from_pairs([("n", 4)]);
            let _ = compile(&program, &env, &CompileOptions::default());
        }
    }

    /// Whole pipeline, generated-but-plausible programs, tight fuel and
    /// memory budgets: every engine must come back with `Ok` or a
    /// structured error — never a panic, never a hang — and all three
    /// engines must agree on the outcome.
    #[test]
    fn pipeline_respects_limits_without_panicking(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("let a = array (1,n) [ i := i * 2 | i <- [1..n] ];"),
                Just("let b = array (1,n) [ i := u!(i) + 1 | i <- [1..n] ];"),
                Just("let c = array (1,n) ([ 1 := 1 ] ++ [ i := c!(i-1) * 2 | i <- [2..n] ]);"),
                Just("let d = array (1,n) [ i := sqrt(u!(i)) | i <- [1..n] ];"),
                Just("let s = sum [ u!(k) | k <- [1..n] ];"),
                Just("let e = array (1,n) [ i := if i < 3 then i else u!(i) | i <- [1..n] ];"),
            ],
            1..5,
        ),
        fuel in 0u64..60,
        mem in prop_oneof![Just(0u64), Just(128), Just(4096)],
        seed in any::<u64>(),
    ) {
        let mut src = String::from("param n;\ninput u (1,n);\n");
        for t in &toks {
            src.push_str(t);
            src.push('\n');
        }
        // Every definition is a valid result; pick the last one.
        let last = toks.last().unwrap();
        let name = last.split_whitespace().nth(1).unwrap();
        src.push_str(&format!("result {name};\n"));

        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let env = ConstEnv::from_pairs([("n", 8)]);
        let funcs = FuncTable::new();
        let limits = Limits { fuel: Some(fuel), mem_bytes: Some(mem) };
        let mut outcomes = Vec::new();
        for engine in [Engine::TreeWalk, Engine::Tape, Engine::ParTape] {
            let compiled = match compile(
                &program,
                &env,
                &CompileOptions { engine, ..CompileOptions::default() },
            ) {
                Ok(c) => c,
                Err(_) => return Ok(()),
            };
            let mut inputs = HashMap::new();
            for unit in &compiled.units {
                if let Unit::Input { name, bounds } = unit {
                    let mut buf = ArrayBuf::new(bounds, 0.0);
                    let mut x = seed | 1;
                    for v in buf.data_mut() {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        *v = (x >> 40) as f64 / 1e4;
                    }
                    inputs.insert(name.clone(), buf);
                }
            }
            for threads in [1usize, 4] {
                let opts = RunOptions { threads: Some(threads), limits, faults: None, ceiling: None };
                let r = run_with_options(&compiled, &inputs, &funcs, &opts);
                outcomes.push(match r {
                    Ok(out) => {
                        let mut names: Vec<&String> = out.arrays.keys().collect();
                        names.sort();
                        Ok(names
                            .iter()
                            .flat_map(|n| out.arrays[*n].data().iter().map(|v| v.to_bits()))
                            .collect::<Vec<u64>>())
                    }
                    Err(e) => Err(format!("{e:?}")),
                });
            }
        }
        for o in &outcomes[1..] {
            prop_assert_eq!(o, &outcomes[0], "engines disagree under limits\n{}", src);
        }
    }
}

#[test]
fn deeply_nested_parens_error_cleanly() {
    // Shallow nesting parses; pathological nesting is rejected by the
    // parser's depth guard instead of crashing the stack.
    let ok = format!("{}1{}", "(".repeat(100), ")".repeat(100));
    assert!(parse_expr(&ok).is_ok());
    let deep = format!("{}1{}", "(".repeat(5_000), ")".repeat(5_000));
    let err = parse_expr(&deep).unwrap_err();
    assert!(err.message.contains("nests deeper"), "{err}");
    let unbalanced = format!("{}1", "(".repeat(5_000));
    assert!(parse_expr(&unbalanced).is_err());
}
