//! Equivalence tests for the extra scientific kernels: pipeline ==
//! thunked == oracle, plus the §10 parallelism verdicts they
//! illustrate.

use std::collections::HashMap;

use hac_core::pipeline::{compile, run, CompileOptions, ExecMode};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;

fn both_modes(
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
) -> (
    hac_core::pipeline::ExecOutput,
    hac_core::pipeline::ExecOutput,
) {
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let auto = compile(&program, env, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("compile: {e}"));
    let thunked = compile(
        &program,
        env,
        &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    (
        run(&auto, inputs, &funcs).unwrap_or_else(|e| panic!("run auto: {e}")),
        run(&thunked, inputs, &funcs).unwrap_or_else(|e| panic!("run thunked: {e}")),
    )
}

#[test]
fn prefix_sum_and_running_max() {
    let n = 64;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 51);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());
    let (a, t) = both_modes(wl::prefix_sum_source(), &env, &inputs);
    wl::assert_close(a.array("s"), &wl::prefix_sum_oracle(&u, n), 1e-9);
    wl::assert_close(t.array("s"), &wl::prefix_sum_oracle(&u, n), 1e-9);
    assert_eq!(a.counters.thunked.thunks_allocated, 0);

    let (a2, t2) = both_modes(wl::running_max_source(), &env, &inputs);
    wl::assert_close(a2.array("s"), &wl::running_max_oracle(&u, n), 1e-12);
    wl::assert_close(t2.array("s"), &wl::running_max_oracle(&u, n), 1e-12);
}

#[test]
fn heat1d_time_wavefront() {
    let (n, m) = (16, 10);
    let env = ConstEnv::from_pairs([("n", n), ("m", m)]);
    let u0 = wl::vector(n, |i| if i == n / 2 { 10.0 } else { 0.0 });
    let mut inputs = HashMap::new();
    inputs.insert("u0".to_string(), u0.clone());
    let (a, t) = both_modes(wl::heat1d_source(), &env, &inputs);
    let oracle = wl::heat1d_oracle(&u0, n, m);
    wl::assert_close(a.array("u"), &oracle, 1e-12);
    wl::assert_close(t.array("u"), &oracle, 1e-12);
    // The time loop carries; the space loop is the §10 vectorization
    // candidate.
    let program = parse_program(wl::heat1d_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let par = &compiled.report.arrays[0].parallelism;
    let vectorizable: Vec<&String> = par
        .iter()
        .filter(|(k, _)| k == "vectorizable")
        .flat_map(|(_, v)| v)
        .collect();
    assert!(
        vectorizable.iter().any(|l| l.starts_with("j ")),
        "space loop should be vectorizable: {par:?}"
    );
}

#[test]
fn lk23_in_place_wavefront() {
    let n = 12;
    let env = ConstEnv::from_pairs([("n", n)]);
    let za = wl::random_matrix(n, n, 61);
    let zr = wl::random_matrix(n, n, 67);
    let zb = wl::random_matrix(n, n, 71);
    let mut inputs = HashMap::new();
    inputs.insert("za".to_string(), za.clone());
    inputs.insert("zr".to_string(), zr.clone());
    inputs.insert("zb".to_string(), zb.clone());
    let program = parse_program(wl::lk23_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    assert!(
        compiled.report.updates[0].strategy.contains("in place"),
        "{}",
        compiled.report.updates[0].strategy
    );
    let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
    wl::assert_close(out.array("qa"), &wl::lk23_oracle(&za, &zr, &zb, n), 1e-12);
    assert_eq!(out.counters.vm.elements_copied, 0);
    assert_eq!(out.counters.vm.temp_elements, 0);
}

#[test]
fn convolution_vectorizable() {
    let n = 40;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 77);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());
    let (a, t) = both_modes(wl::convolution_source(), &env, &inputs);
    let oracle = wl::convolution_oracle(&u, n);
    wl::assert_close(a.array("c"), &oracle, 1e-12);
    wl::assert_close(t.array("c"), &oracle, 1e-12);
    let program = parse_program(wl::convolution_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let par = &compiled.report.arrays[0].parallelism;
    assert!(
        par.iter().any(|(k, _)| k == "vectorizable"),
        "no recursion → vectorizable: {par:?}"
    );
}

#[test]
fn pascal_with_guards() {
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let (a, t) = both_modes(wl::pascal_source(), &env, &HashMap::new());
    let oracle = wl::pascal_oracle(n);
    wl::assert_close(a.array("p"), &oracle, 1e-12);
    wl::assert_close(t.array("p"), &oracle, 1e-12);
    // Guards prevent the empties proof → runtime checks compiled; they
    // all pass.
    assert!(a.counters.vm.check_ops > 0, "{:?}", a.counters.vm);
}

#[test]
fn dot_and_matvec_match_oracles_bit_exactly() {
    // The fused reduction kernels fold strictly left-to-right — the
    // same FP op order as the oracles — so the comparison is exact
    // (tolerance 0.0), not merely close.
    let n = 48;
    let env = ConstEnv::from_pairs([("n", n)]);
    let a = wl::random_vector(n, 91);
    let b = wl::random_vector(n, 92);
    let inputs = HashMap::from([("a".to_string(), a.clone()), ("b".to_string(), b.clone())]);
    let (auto, thunked) = both_modes(wl::dot_source(), &env, &inputs);
    let oracle = wl::dot_oracle(&a, &b, n);
    wl::assert_close(auto.array("r"), &oracle, 0.0);
    wl::assert_close(thunked.array("r"), &oracle, 0.0);

    let m = wl::random_matrix(n, n, 93);
    let x = wl::random_vector(n, 94);
    let inputs = HashMap::from([("m".to_string(), m.clone()), ("x".to_string(), x.clone())]);
    let (auto, thunked) = both_modes(wl::matvec_source(), &env, &inputs);
    let oracle = wl::matvec_oracle(&m, &x, n);
    wl::assert_close(auto.array("y"), &oracle, 0.0);
    wl::assert_close(thunked.array("y"), &oracle, 0.0);

    // The reduction verdict surfaces in the report: matvec's inner k
    // loop reduces while its outer i loop stays parallel.
    let program = parse_program(wl::matvec_source()).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let par = &compiled.report.arrays[0].parallelism;
    assert!(
        par.iter().any(|(k, _)| k == "reduction"),
        "matvec inner loop must carry the reduction verdict: {par:?}"
    );
    assert!(
        par.iter().any(|(k, _)| k == "parallelizable"),
        "matvec outer loop must stay parallel: {par:?}"
    );
}
