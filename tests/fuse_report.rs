//! Golden test for the per-loop fusion verdicts in `--report` output.
//! Every loop the tape compiler sees gets exactly one `fusion for ...`
//! line — either `fused (<kernel shape>)` or `scalar (<reason>)` — and
//! the wording is part of the user-facing surface, so drift is an
//! intentional act: regenerate with `UPDATE_GOLDEN=1 cargo test --test
//! fuse_report`.

use hac_core::pipeline::{compile, CompileOptions, Engine};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_workloads as wl;

#[test]
fn fusion_verdicts_match_golden_report() {
    let kernels: &[(&str, &str, i64)] = &[
        // Out-of-place stencil: inner loop fuses as a 4-point stencil.
        ("jacobi_step", wl::jacobi_step_source(), 8),
        // Weighted 3-point relaxation: fuses as a 3-point stencil.
        ("relaxation", wl::relaxation_source(), 24),
        // In-place update: aliasing pushes the inner loop to the
        // generic micro-kernel.
        ("jacobi", wl::jacobi_source(), 8),
        // Gauss–Seidel carries a flow dependence: a non-reassociable
        // carry, so both loops stay scalar.
        ("sor", wl::sor_source(), 8),
        // Recurrence over partial sums: the init clause fuses
        // elementwise, the k-accumulation is a reduction over a
        // stride-n operand (multiply-add accumulate).
        ("matmul", wl::matmul_source(), 6),
        // Running-sum recurrence: the k loop fuses as a dot kernel.
        ("dot", wl::dot_source(), 8),
        // Outer i parallel, inner k a reduction: the dot kernel runs
        // inside each chunk of the parallel region.
        ("matvec", wl::matvec_source(), 8),
    ];

    let mut rendered = String::from("# per-loop fusion verdicts (ParTape engine, fuse on)\n");
    for (name, src, n) in kernels {
        let program = parse_program(src).unwrap();
        let compiled = compile(
            &program,
            &ConstEnv::from_pairs([("n", *n)]),
            &CompileOptions {
                engine: Engine::ParTape,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        rendered.push_str(&format!("## {name} (n={n})\n"));
        for line in compiled.report.render().lines() {
            let t = line.trim_start();
            if t.starts_with("fusion ") || t.starts_with("loops ") {
                rendered.push_str(line);
                rendered.push('\n');
            }
        }
    }

    let golden_path = "tests/golden/fuse_report.txt";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, want,
        "fusion verdicts drifted from {golden_path} (regenerate with UPDATE_GOLDEN=1 if intended)"
    );
}

/// `fuse: false` must leave the report free of fusion lines — the
/// verdicts report what the pass did, not what it would have done.
#[test]
fn no_fuse_reports_no_fusion_lines() {
    let program = parse_program(wl::jacobi_step_source()).unwrap();
    let compiled = compile(
        &program,
        &ConstEnv::from_pairs([("n", 8)]),
        &CompileOptions {
            engine: Engine::ParTape,
            fuse: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let report = compiled.report.render();
    assert!(
        !report.contains("fusion "),
        "fuse:false must not emit verdicts:\n{report}"
    );
}
