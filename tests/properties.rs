//! Property-based tests (proptest) over the core invariants:
//! soundness of the inexact dependence tests, exactness of the exact
//! test, legality of every schedule the scheduler emits, semantic
//! agreement between strategies, comprehension order-irrelevance, and
//! persistent-array consistency.

use std::collections::HashMap;

use proptest::prelude::*;

use hac_analysis::banerjee::banerjee_test_dim;
use hac_analysis::direction::{Dir, DirVec};
use hac_analysis::equation::{DimEquation, LoopTerm};
use hac_analysis::exact::{exact_test, ExactResult};
use hac_analysis::gcd::gcd_test_dim;
use hac_analysis::refs::collect_refs;
use hac_analysis::search::TestPolicy;
use hac_core::pipeline::{compile, run, CompileOptions, ExecMode};
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::{parse_comp, parse_program};
use hac_runtime::incremental::{CopyCounters, CowArray, TrailerArray, TrailerCounters};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_schedule::check::check_plan;
use hac_schedule::plan::ScheduleOutcome;
use hac_schedule::scheduler::schedule;

fn dir_strategy() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Any), Just(Dir::Lt), Just(Dir::Eq), Just(Dir::Gt)]
}

/// Brute-force 1-D dependence oracle.
fn brute_solvable(a: i64, b: i64, rhs: i64, m: i64, dir: Dir) -> bool {
    for x in 1..=m {
        for y in 1..=m {
            let ok = match dir {
                Dir::Any => true,
                Dir::Lt => x < y,
                Dir::Eq => x == y,
                Dir::Gt => x > y,
            };
            if ok && a * x - b * y == rhs {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// GCD and Banerjee are *necessary* tests: whenever an integer
    /// solution exists in the constrained region they must say
    /// "dependence possible".
    #[test]
    fn inexact_tests_are_sound(
        a in -4i64..=4,
        b in -4i64..=4,
        rhs in -8i64..=8,
        m in 1i64..=6,
        dir in dir_strategy(),
    ) {
        let eq = DimEquation {
            shared: vec![LoopTerm { size: m, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: rhs,
        };
        let dv = DirVec(vec![dir]);
        if brute_solvable(a, b, rhs, m, dir) {
            prop_assert!(gcd_test_dim(&eq, &dv), "GCD unsound");
            prop_assert!(banerjee_test_dim(&eq, &dv), "Banerjee unsound");
        }
    }

    /// The exact test agrees with brute force in both directions.
    #[test]
    fn exact_test_is_exact(
        a in -4i64..=4,
        b in -4i64..=4,
        rhs in -8i64..=8,
        m in 1i64..=6,
        dir in dir_strategy(),
    ) {
        let eq = DimEquation {
            shared: vec![LoopTerm { size: m, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: rhs,
        };
        let dv = DirVec(vec![dir]);
        let got = exact_test(&[eq], &dv, 1_000_000);
        let want = brute_solvable(a, b, rhs, m, dir);
        match got {
            ExactResult::Dependent(w) => {
                prop_assert!(want, "spurious witness {w:?}");
                let (x, y) = w.shared[0];
                prop_assert_eq!(a * x - b * y, rhs, "bad witness");
            }
            ExactResult::Independent => prop_assert!(!want, "missed solution"),
            ExactResult::Unknown => prop_assert!(false, "budget too small"),
        }
    }

    /// Any thunkless plan the scheduler emits for a random 1-D
    /// two-clause recurrence satisfies every dependence edge (checked
    /// by the instance-level legality oracle).
    #[test]
    fn schedules_are_legal(
        off in 1i64..=3,
        forward in any::<bool>(),
        n in 4i64..=10,
    ) {
        // border at one end, recurrence reading a!(i ∓ off).
        let src = if forward {
            format!(
                "[ i := 7 | i <- [1..{off}] ] ++ [ i := a!(i-{off}) + 1 | i <- [{}..{n}] ]",
                off + 1
            )
        } else {
            format!(
                "[ i := 7 | i <- [{}..{n}] ] ++ [ i := a!(i+{off}) + 1 | i <- [1..{}] ]",
                n - off + 1,
                n - off
            )
        };
        let mut c = parse_comp(&src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::new();
        let refs = collect_refs(&c, "a", &env).unwrap();
        let flow = hac_analysis::depgraph::flow_dependences(&refs, "a", &TestPolicy::default());
        match schedule(&c, &flow.edges) {
            ScheduleOutcome::Thunkless(plan) => {
                check_plan(&plan, &c, &flow.edges, &env)
                    .map_err(|e| TestCaseError::fail(format!("{e}\n{}", plan.render())))?;
            }
            ScheduleOutcome::NeedsThunks(r) => {
                return Err(TestCaseError::fail(format!("unexpected fallback: {r}")));
            }
        }
    }

    /// Thunkless and thunked strategies agree on random 2-D wavefront
    /// variants (random subsets of the N/W/NW neighbor reads and random
    /// border values).
    #[test]
    fn strategies_agree_on_random_wavefronts(
        use_n in any::<bool>(),
        use_w in any::<bool>(),
        use_nw in any::<bool>(),
        border in -3i64..=3,
        n in 3i64..=7,
    ) {
        let mut terms: Vec<&str> = Vec::new();
        if use_n { terms.push("a!(i-1,j)"); }
        if use_w { terms.push("a!(i,j-1)"); }
        if use_nw { terms.push("a!(i-1,j-1)"); }
        if terms.is_empty() { terms.push("1"); }
        let body = terms.join(" + ");
        let src = format!(
            "param n;\nletrec* a = array ((1,1),(n,n))\n\
             ([ (1,j) := {border} | j <- [1..n] ] ++\n\
              [ (i,1) := {border} + i | i <- [2..n] ] ++\n\
              [ (i,j) := {body} + 1 | i <- [2..n], j <- [2..n] ]);\n"
        );
        let env = ConstEnv::from_pairs([("n", n)]);
        let program = parse_program(&src).unwrap();
        let auto = compile(&program, &env, &CompileOptions::default()).unwrap();
        let thunked = compile(&program, &env, &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        }).unwrap();
        let inputs = HashMap::new();
        let funcs = FuncTable::new();
        let a = run(&auto, &inputs, &funcs).unwrap();
        let t = run(&thunked, &inputs, &funcs).unwrap();
        prop_assert_eq!(a.array("a").data(), t.array("a").data());
        prop_assert_eq!(a.counters.thunked.thunks_allocated, 0);
    }

    /// §3: "the order of the list is completely irrelevant" — permuting
    /// the appended clause families never changes the array.
    #[test]
    fn comprehension_order_is_irrelevant(perm in 0usize..6, n in 3i64..=6) {
        let families = [
            "[ (1,j) := 1 | j <- [1..n] ]",
            "[ (i,1) := 1 | i <- [2..n] ]",
            "[ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ]",
        ];
        let orders = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let ord = orders[perm];
        let body = format!(
            "{} ++ {} ++ {}",
            families[ord[0]], families[ord[1]], families[ord[2]]
        );
        let src = format!(
            "param n;\nletrec* a = array ((1,1),(n,n)) ({body});\n"
        );
        let env = ConstEnv::from_pairs([("n", n)]);
        let out = hac_core::pipeline::compile_and_run(&src, &env, &HashMap::new())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let baseline_src = format!(
            "param n;\nletrec* a = array ((1,1),(n,n)) ({} ++ {} ++ {});\n",
            families[0], families[1], families[2]
        );
        let baseline =
            hac_core::pipeline::compile_and_run(&baseline_src, &env, &HashMap::new())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(out.array("a").data(), baseline.array("a").data());
    }

    /// COW and trailer arrays agree with a plain persistent-map oracle
    /// under random interleaved updates and version reads.
    #[test]
    fn persistent_arrays_agree(ops in proptest::collection::vec((0i64..8, -10f64..10.0), 1..40)) {
        let n = 8;
        let init = ArrayBuf::new(&[(1, n)], 0.0);
        // Oracle: materialize every version as a full Vec.
        let mut versions: Vec<Vec<f64>> = vec![init.data().to_vec()];
        let mut cows = vec![CowArray::new(init.clone())];
        let mut trailers = vec![TrailerArray::new(init.clone())];
        let mut cc = CopyCounters::default();
        let mut tc = TrailerCounters::default();
        for (slot, v) in &ops {
            let idx = slot % n + 1;
            // Update the latest version.
            let mut next = versions.last().unwrap().clone();
            next[(idx - 1) as usize] = *v;
            versions.push(next);
            let cow = cows.last().unwrap().clone();
            cows.push(cow.update("a", &[idx], *v, &mut cc).unwrap());
            let tr = trailers.last().unwrap().clone();
            trailers.push(tr.update("a", &[idx], *v, &mut tc).unwrap());
        }
        // Every historical version must still read correctly.
        for (vi, want) in versions.iter().enumerate() {
            for i in 1..=n {
                let w = want[(i - 1) as usize];
                prop_assert_eq!(cows[vi].get("a", &[i]).unwrap(), w);
                prop_assert_eq!(trailers[vi].get("a", &[i], &mut tc).unwrap(), w);
            }
        }
    }

    /// Affine extraction round-trips through `to_expr`.
    #[test]
    fn affine_roundtrip(c in -20i64..=20, ci in -5i64..=5, cj in -5i64..=5) {
        use hac_lang::affine::Affine;
        let a = Affine::term("i", ci)
            .add(&Affine::term("j", cj))
            .add(&Affine::constant(c));
        let e = a.to_expr();
        let back = Affine::from_expr(&e, &ConstEnv::new()).unwrap();
        prop_assert_eq!(a, back);
    }
}

/// Deterministic regression: a random-looking but fixed mixed program
/// exercising inputs + recurrence + update in one pipeline run.
#[test]
fn mixed_program_regression() {
    let src = r#"
param n;
input u (1,n);
letrec* s = array (1,n)
   ([ 1 := u!1 ] ++ [ i := s!(i-1) + u!i | i <- [2..n] ]);
let sq = array (1,n) [ i := s!i * s!i | i <- [1..n] ];
t = bigupd sq [ i := sq!(i+1) | i <- [1..n-1] ];
result t;
"#;
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = hac_workloads::random_vector(n, 99);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u.clone());
    let out = hac_core::pipeline::compile_and_run(src, &env, &inputs).unwrap();
    // Oracle.
    let mut s = vec![0.0; (n + 1) as usize];
    s[1] = u.get("u", &[1]).unwrap();
    for i in 2..=n as usize {
        s[i] = s[i - 1] + u.get("u", &[i as i64]).unwrap();
    }
    let t = out.array("t");
    for i in 1..n {
        let want = s[(i + 1) as usize] * s[(i + 1) as usize];
        assert!((t.get("t", &[i]).unwrap() - want).abs() < 1e-9, "at {i}");
    }
    let last = s[n as usize] * s[n as usize];
    assert!((t.get("t", &[n]).unwrap() - last).abs() < 1e-9);
}
