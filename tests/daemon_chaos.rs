//! The deterministic chaos harness for the daemon: a fixed request
//! script is driven twice over loopback TCP — once fault-free, once
//! under a chaos plan that drops, stalls, garbages, short-writes, and
//! panics at exact connection/request coordinates — and the two runs
//! are compared **differentially**:
//!
//!   * every request the plan does not touch produces a response
//!     byte-identical to the fault-free run,
//!   * every touched request produces a structured error line or a
//!     clean socket close — never a hang, never a dead daemon,
//!   * the daemon's armor ledger (the `daemon` object in the `stats`
//!     control reply) accounts for every injected fault exactly.
//!
//! The differential holds at every engine thread count because chaos
//! coordinates are ordinals, not clocks. A golden-file test pins the
//! full `stats` wire line for a fixed armor workout
//! (`tests/golden/daemon_stats.txt`, regenerate with `UPDATE_GOLDEN=1`).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use hac::serve::chaos::ChaosPlan;
use hac::serve::daemon::{self, Daemon, DaemonOptions};
use hac::serve::json::{self, Json};
use hac::serve::{Request, ServeOptions, Server};
use hac_runtime::governor::FaultPlan;

/// Inline kernel: no file dependence, so byte counts in the golden
/// ledger cannot drift with `programs/*.hac` edits.
const RECURRENCE: &str = "param n;\nletrec* a = array (1,n) \
    ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n";

fn req(id: &str, n: i64) -> Request {
    let mut r = Request::new(id, RECURRENCE);
    r.params.push(("n".to_string(), n));
    r.seed = 7;
    r.fuel = Some(100_000);
    r
}

/// A daemon wrapping a hermetic server (explicit empty fault plan, so
/// an ambient `HAC_FAULT_PLAN` — CI's fault-injection job — cannot
/// perturb the byte-identity comparison).
fn spawn_daemon(threads: usize, options: DaemonOptions) -> Daemon {
    let server = Server::new(ServeOptions {
        threads,
        faults: Some(FaultPlan::default()),
        ..ServeOptions::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    daemon::spawn(Arc::new(server), listener, options).expect("spawn daemon")
}

struct Conn {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("hang guard");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            out: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.out, "{line}").expect("send");
    }

    /// One reply line, newline stripped; panics on EOF (the test
    /// expected a response here).
    fn recv(&mut self) -> String {
        let mut s = String::new();
        let n = self.reader.read_line(&mut s).expect("recv");
        assert!(n > 0, "unexpected EOF");
        s.trim_end().to_string()
    }

    /// Everything until EOF, raw (for asserting dropped and truncated
    /// responses byte-exactly).
    fn drain(mut self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.reader.read_to_end(&mut bytes).expect("drain");
        bytes
    }
}

/// The fault-free run: the same server-side arrival sequence the chaos
/// run produces (stall/panic victims never reach the server, so they
/// are simply absent here). Returns wire lines by request id.
fn baseline(threads: usize) -> BTreeMap<String, String> {
    let daemon = spawn_daemon(threads, DaemonOptions::default());
    let mut lines = BTreeMap::new();
    for pair in [
        [("a0", 4), ("a1", 5)],
        [("b0", 6), ("b1", 4)],
        [("c0", 5), ("c1", 6)],
        [("f0", 4), ("f1", 7)],
    ] {
        let mut conn = Conn::open(daemon.addr());
        for (id, n) in pair {
            conn.send(&req(id, n).to_json().to_string());
            lines.insert(id.to_string(), conn.recv());
        }
    }
    let mut conn = Conn::open(daemon.addr());
    conn.send("{\"control\":\"shutdown\"}");
    assert!(conn.recv().contains("\"ok\":true"));
    daemon.join().expect("clean shutdown");
    lines
}

const IO_TIMEOUT_LINE: &str =
    "{\"id\":null,\"status\":\"rejected\",\"error\":\"io-timeout\",\"detail\":\"read deadline elapsed\"}";
const GARBAGE_LINE: &str =
    "{\"id\":null,\"status\":\"rejected\",\"error\":\"bad-request\",\"detail\":\"chaos: injected garbage line\"}";

/// Pull a named field out of a `stats` reply's sub-object.
fn stat(reply: &Json, obj: &str, key: &str) -> u64 {
    reply
        .get(obj)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {obj}.{key}"))
}

#[test]
fn chaos_touches_exactly_the_planned_coordinates_at_every_thread_count() {
    for threads in [1usize, 2, 4, 8] {
        let want = baseline(threads);
        let plan = ChaosPlan::parse("c1r0:garbage,c2r1:drop,c3r0:stall,c4r0:panic,c5r1:shortwrite")
            .expect("parse plan");
        let daemon = spawn_daemon(
            threads,
            DaemonOptions {
                chaos: Some(plan),
                ..DaemonOptions::default()
            },
        );
        let addr = daemon.addr();
        let mut sent_bytes: u64 = 0;
        let mut send_req = |conn: &mut Conn, id: &str, n: i64| {
            let line = req(id, n).to_json().to_string();
            sent_bytes += line.len() as u64 + 1;
            conn.send(&line);
        };

        // conn 0: untouched — byte-identical responses.
        let mut c0 = Conn::open(addr);
        for (id, n) in [("a0", 4), ("a1", 5)] {
            send_req(&mut c0, id, n);
            assert_eq!(c0.recv(), want[id], "threads {threads}: untouched {id}");
        }
        drop(c0);

        // conn 1: garbage injected ahead of b0 — one structured error
        // line, then the real response, byte-identical.
        let mut c1 = Conn::open(addr);
        send_req(&mut c1, "b0", 6);
        assert_eq!(c1.recv(), GARBAGE_LINE, "threads {threads}: garbage line");
        assert_eq!(c1.recv(), want["b0"], "threads {threads}: b0 after garbage");
        send_req(&mut c1, "b1", 4);
        assert_eq!(c1.recv(), want["b1"], "threads {threads}: b1 untouched");
        drop(c1);

        // conn 2: c1's response is computed, then dropped — the client
        // sees EOF with zero bytes, and the daemon survives.
        let mut c2 = Conn::open(addr);
        send_req(&mut c2, "c0", 5);
        assert_eq!(c2.recv(), want["c0"], "threads {threads}: c0 before drop");
        send_req(&mut c2, "c1", 6);
        assert_eq!(
            c2.drain(),
            b"",
            "threads {threads}: dropped response leaks bytes"
        );

        // conn 3: the read deadline "fires" on d0 — structured
        // io-timeout line, then close; d0 never reaches the server.
        let mut c3 = Conn::open(addr);
        send_req(&mut c3, "d0", 8);
        assert_eq!(c3.recv(), IO_TIMEOUT_LINE, "threads {threads}: stall line");
        assert_eq!(
            c3.drain(),
            b"",
            "threads {threads}: stall closes the connection"
        );

        // conn 4: the handler panics before serving e0 — clean EOF,
        // nothing served, daemon keeps accepting.
        let mut c4 = Conn::open(addr);
        send_req(&mut c4, "e0", 9);
        assert_eq!(
            c4.drain(),
            b"",
            "threads {threads}: panic closes without bytes"
        );

        // conn 5: f1's response is truncated to its first half.
        let mut c5 = Conn::open(addr);
        send_req(&mut c5, "f0", 4);
        assert_eq!(
            c5.recv(),
            want["f0"],
            "threads {threads}: f0 before shortwrite"
        );
        send_req(&mut c5, "f1", 7);
        let full = want["f1"].as_bytes();
        assert_eq!(
            c5.drain(),
            &full[..full.len() / 2],
            "threads {threads}: shortwrite is exactly the first half"
        );

        // conn 6: the ledger accounts for every injection exactly. The
        // panic counter is bumped just after the panicking handler's
        // socket closes, so poll the stats control until it lands,
        // then assert the whole ledger (each stats line we send is
        // itself read off the socket, so the byte ledger grows by a
        // known amount per attempt).
        let mut c6 = Conn::open(addr);
        let stats_line = "{\"control\":\"stats\"}";
        let mut ledger = None;
        for attempt in 1..=200u64 {
            c6.send(stats_line);
            sent_bytes += stats_line.len() as u64 + 1;
            let reply = json::parse(&c6.recv()).expect("stats reply parses");
            if stat(&reply, "daemon", "panics_recovered") == 1 {
                ledger = Some((reply, attempt));
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let (reply, _) = ledger.expect("panic recovery never reached the ledger");
        for (key, expect) in [
            ("conns", 7),
            ("panics_recovered", 1),
            ("lines_rejected", 1),
            ("line_bytes_read", sent_bytes),
            ("io_timeouts", 0),
            ("dropped", 1),
            ("stalled", 1),
            ("garbage_injected", 1),
            ("short_writes", 1),
        ] {
            assert_eq!(
                stat(&reply, "daemon", key),
                expect,
                "threads {threads}: ledger field {key}"
            );
        }
        assert_eq!(stat(&reply, "server", "shed"), 0);
        assert_eq!(stat(&reply, "server", "retried"), 0);

        c6.send("{\"control\":\"shutdown\"}");
        assert!(c6.recv().contains("\"ok\":true"));
        daemon.join().expect("daemon survives the whole plan");
    }
}

/// Engine-level tokens ride in the same spec: `nosnapshot,r0c0:panic`
/// reaches the engines through `ChaosPlan::engine` (the CLI routes it
/// into `ServeOptions::faults`), while `c<N>` tokens stay on the I/O
/// path. Here we only pin the split — the daemon itself must ignore
/// the engine half.
#[test]
fn engine_tokens_do_not_leak_into_the_io_path() {
    let plan = ChaosPlan::parse("c0r1:drop,nosnapshot,r0c0:panic").expect("parse");
    assert_eq!(plan.conns.len(), 1);
    assert!(!plan.engine.snapshot);
    assert_eq!(plan.engine.points.len(), 1);
    // A daemon given only the connection half serves request 0 fine.
    let daemon = spawn_daemon(
        1,
        DaemonOptions {
            chaos: Some(ChaosPlan {
                engine: FaultPlan::default(),
                ..plan
            }),
            ..DaemonOptions::default()
        },
    );
    let mut conn = Conn::open(daemon.addr());
    conn.send(&req("only", 4).to_json().to_string());
    assert!(conn.recv().contains("\"status\":\"ok\""));
    conn.send(&req("gone", 4).to_json().to_string());
    assert_eq!(conn.drain(), b"");
    let mut ctl = Conn::open(daemon.addr());
    ctl.send("{\"control\":\"shutdown\"}");
    assert!(ctl.recv().contains("\"ok\":true"));
    daemon.join().expect("clean shutdown");
}

/// The armor ledger's full wire form, pinned against a golden file: a
/// fixed script exercises tenant attribution, a cache hit, a malformed
/// line, and an oversized line, and the resulting `stats` reply must
/// not drift by a byte. Regenerate with `UPDATE_GOLDEN=1`.
#[test]
fn stats_reply_matches_the_golden_ledger() {
    let daemon = spawn_daemon(
        2,
        DaemonOptions {
            max_conns: 2,
            max_line_bytes: 512,
            ..DaemonOptions::default()
        },
    );
    let addr = daemon.addr();

    let mut c0 = Conn::open(addr);
    c0.send("{\"control\":\"tenant\",\"tenant\":\"acme\"}");
    assert!(c0.recv().contains("\"ok\":true"));
    c0.send(&req("g0", 6).to_json().to_string());
    assert!(c0.recv().contains("\"status\":\"ok\""));
    c0.send("{oops");
    assert!(c0.recv().contains("\"error\":\"bad-request\""));
    drop(c0);

    let mut c1 = Conn::open(addr);
    c1.send(&"x".repeat(600));
    assert!(c1.recv().contains("\"error\":\"line-too-long\""));
    c1.send(&req("g1", 6).to_json().to_string());
    assert!(c1.recv().contains("\"cache\":\"hit\""));
    drop(c1);

    let mut c2 = Conn::open(addr);
    c2.send("{\"control\":\"stats\"}");
    let rendered = format!("{}\n", c2.recv());

    let golden_path = "tests/golden/daemon_stats.txt";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    } else {
        let want = std::fs::read_to_string(golden_path)
            .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
        assert_eq!(
            rendered, want,
            "stats ledger drifted from {golden_path}; regenerate with UPDATE_GOLDEN=1"
        );
    }

    c2.send("{\"control\":\"shutdown\"}");
    assert!(c2.recv().contains("\"ok\":true"));
    daemon.join().expect("clean shutdown");
}
