//! End-to-end scalar reductions (§3.1): `sum`/`product`/`reduce`
//! bindings compiled as DO loops, with results flowing into later
//! array definitions.

use std::collections::HashMap;

use hac_core::pipeline::compile_and_run;
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_lang::pretty::program_to_string;
use hac_workloads as wl;

#[test]
fn dot_product_end_to_end() {
    // The paper's §3.1 example verbatim: sum [ a!k * b!k | k <- [1..n] ].
    let src = r#"
param n;
input a (1,n);
input b (1,n);
let s = sum [ a!k * b!k | k <- [1..n] ];
let scaled = array (1,n) [ i := a!i / s | i <- [1..n] ];
result scaled;
"#;
    let n = 8;
    let env = ConstEnv::from_pairs([("n", n)]);
    let a = wl::vector(n, |i| i as f64);
    let b = wl::vector(n, |_| 2.0);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), a.clone());
    inputs.insert("b".to_string(), b.clone());
    let out = compile_and_run(src, &env, &inputs).unwrap();
    let dot: f64 = (1..=n).map(|i| (i as f64) * 2.0).sum();
    assert_eq!(out.scalar("s"), dot);
    for i in 1..=n {
        assert!((out.array("scaled").get("scaled", &[i]).unwrap() - i as f64 / dot).abs() < 1e-12);
    }
}

#[test]
fn norm_of_computed_array() {
    // Reduce over a letrec*-defined array, then normalize in a bigupd.
    let src = r#"
param n;
letrec* v = array (1,n) ([ 1 := 1 ] ++ [ i := v!(i-1) + 1 | i <- [2..n] ]);
let nrm = sum [ v!k * v!k | k <- [1..n] ];
w = bigupd v [ i := v!i / sqrt(nrm) | i <- [1..n] ];
result w;
"#;
    let n = 5;
    let env = ConstEnv::from_pairs([("n", n)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    let sq: f64 = (1..=n).map(|i| (i * i) as f64).sum();
    assert_eq!(out.scalar("nrm"), sq);
    let w = out.array("w");
    let norm: f64 = (1..=n).map(|i| w.get("w", &[i]).unwrap().powi(2)).sum();
    assert!((norm - 1.0).abs() < 1e-12, "unit norm, got {norm}");
    assert_eq!(out.counters.vm.elements_copied, 0, "in-place normalize");
}

#[test]
fn product_and_custom_reduce() {
    let src = r#"
param n;
let f = product [ i | i <- [1..n] ];
let m = reduce (max) 0 [ i * (n - i) | i <- [1..n] ];
let a = array (1,2) ([ 1 := f ] ++ [ 2 := m ]);
result a;
"#;
    let env = ConstEnv::from_pairs([("n", 6)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    assert_eq!(out.scalar("f"), 720.0);
    assert_eq!(out.scalar("m"), 9.0); // max i(6−i) = 3·3
    assert_eq!(out.array("a").data(), &[720.0, 9.0]);
}

#[test]
fn reduction_feeds_thunked_fallback() {
    // The scalar must also reach arrays evaluated with thunks
    // (indirect subscripts force the fallback).
    let src = r#"
param n;
input p (1,n);
let s = sum [ k | k <- [1..n] ];
letrec* a = array (1,n) [ i := if i == 1 then s else a!(p!i) + 1 | i <- [1..n] ];
result a;
"#;
    let n = 4;
    let env = ConstEnv::from_pairs([("n", n)]);
    let p = wl::vector(n, |i| (i - 1).max(1) as f64);
    let mut inputs = HashMap::new();
    inputs.insert("p".to_string(), p);
    let out = compile_and_run(src, &env, &inputs).unwrap();
    assert!(out.counters.thunked.thunks_allocated > 0);
    assert_eq!(out.array("a").data(), &[10.0, 11.0, 12.0, 13.0]);
}

#[test]
fn reduction_pretty_roundtrip() {
    let src = "param n;\nlet s = reduce (+) 0.0 [ i * i | i <- [1..n], i > 2 ];\n";
    let p = parse_program(src).unwrap();
    let printed = program_to_string(&p);
    let back = parse_program(&printed).unwrap();
    assert_eq!(p, back, "{printed}");
}

#[test]
fn guards_lets_and_appends_in_reductions() {
    let src = r#"
param n;
let s = sum [ v | i <- [1..n], i mod 2 == 0, let v = i * 10 ] ++ [ 5 ];
let a = array (1,1) [ 1 := s ];
"#;
    let env = ConstEnv::from_pairs([("n", 5)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    assert_eq!(out.scalar("s"), 20.0 + 40.0 + 5.0);
}
