//! Smoke tests for the `hacc` CLI driver (built automatically for
//! integration tests; path via `CARGO_BIN_EXE_hacc`).

use std::process::Command;

fn hacc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hacc"))
        .args(args)
        .output()
        .expect("spawn hacc")
}

#[test]
fn wavefront_program_runs() {
    let out = hacc(&["programs/wavefront.hac", "n=6"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("outcome: thunkless"), "{stdout}");
    assert!(stdout.contains("1683.0000"), "Delannoy corner: {stdout}");
    assert!(stdout.contains("0 thunks"), "{stdout}");
}

#[test]
fn sor_program_reports_in_place() {
    let out = hacc(&["programs/sor.hac", "n=8", "--fill", "random:7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("in place, zero copies"), "{stdout}");
    assert!(stdout.contains("0 copies"), "{stdout}");
}

#[test]
fn thunked_mode_flag() {
    let out = hacc(&[
        "programs/wavefront.hac",
        "n=5",
        "--mode",
        "thunked",
        "--quiet",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("25 thunks"), "{stdout}");
}

#[test]
fn explain_only() {
    let out = hacc(&["programs/tridiag.hac", "n=6", "--no-run"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dependences:"), "{stdout}");
    assert!(!stdout.contains("counters:"), "{stdout}");
}

#[test]
fn missing_parameter_is_a_clean_error() {
    let out = hacc(&["programs/wavefront.hac"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not"),
        "should explain the failure: {stderr}"
    );
}

#[test]
fn bad_file_is_a_clean_error() {
    let out = hacc(&["no-such-file.hac", "n=3"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn emit_limp_flag() {
    let out = hacc(&[
        "programs/sor.hac",
        "n=5",
        "--quiet",
        "--no-run",
        "--emit",
        "limp",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("limp for update `b` (in place)"),
        "{stdout}"
    );
    assert!(stdout.contains("for i = 2"), "{stdout}");
}

#[test]
fn scalar_reductions_printed() {
    std::fs::write(
        "target/cli_reduce_test.hac",
        "param n;\ninput u (1,n);\nlet s = sum [ u!k | k <- [1..n] ];\n\
         let a = array (1,1) [ 1 := s ];\nresult a;\n",
    )
    .unwrap();
    let out = hacc(&[
        "target/cli_reduce_test.hac",
        "n=4",
        "--quiet",
        "--fill",
        "zero",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scalar `s` = 0"), "{stdout}");
}
