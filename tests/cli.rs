//! Smoke tests for the `hacc` CLI driver (built automatically for
//! integration tests; path via `CARGO_BIN_EXE_hacc`).

use std::process::Command;

fn hacc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hacc"))
        .args(args)
        // Keep these tests deterministic when the suite itself runs
        // under an ambient fault-injection plan (the CI fault job);
        // `env_plan_reaches_the_engine` covers the variable on purpose.
        .env_remove("HAC_FAULT_PLAN")
        .output()
        .expect("spawn hacc")
}

#[test]
fn wavefront_program_runs() {
    let out = hacc(&["programs/wavefront.hac", "n=6"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("outcome: thunkless"), "{stdout}");
    assert!(stdout.contains("1683.0000"), "Delannoy corner: {stdout}");
    assert!(stdout.contains("0 thunks"), "{stdout}");
}

#[test]
fn sor_program_reports_in_place() {
    let out = hacc(&["programs/sor.hac", "n=8", "--fill", "random:7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("in place, zero copies"), "{stdout}");
    assert!(stdout.contains("0 copies"), "{stdout}");
}

#[test]
fn thunked_mode_flag() {
    let out = hacc(&[
        "programs/wavefront.hac",
        "n=5",
        "--mode",
        "thunked",
        "--quiet",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("25 thunks"), "{stdout}");
}

#[test]
fn explain_only() {
    let out = hacc(&["programs/tridiag.hac", "n=6", "--no-run"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dependences:"), "{stdout}");
    assert!(!stdout.contains("counters:"), "{stdout}");
}

#[test]
fn missing_parameter_is_a_clean_error() {
    let out = hacc(&["programs/wavefront.hac"]);
    assert_eq!(out.status.code(), Some(2), "compile errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not"),
        "should explain the failure: {stderr}"
    );
}

#[test]
fn bad_file_is_a_clean_error() {
    let out = hacc(&["no-such-file.hac", "n=3"]);
    assert_eq!(out.status.code(), Some(1), "I/O errors exit 1");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn failure_classes_get_distinct_exit_codes() {
    // Usage error: 1.
    let out = hacc(&["--threads", "zero"]);
    assert_eq!(out.status.code(), Some(1), "usage errors exit 1");

    // Parse error: 2, with a diagnostic on stderr.
    std::fs::write("target/cli_parse_err.hac", "let let let := ;;\n").unwrap();
    let out = hacc(&["target/cli_parse_err.hac", "n=3"]);
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));

    // Runtime error: 3.
    std::fs::write(
        "target/cli_runtime_err.hac",
        "param n;\nlet a = array (1,n) [ i := a!(i-1) | i <- [1..n] ];\nresult a;\n",
    )
    .unwrap();
    let out = hacc(&["target/cli_runtime_err.hac", "n=4", "--quiet"]);
    assert_eq!(out.status.code(), Some(3), "runtime errors exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("runtime error"));

    // Limit exhaustion: 4, for fuel and memory alike.
    let out = hacc(&["programs/wavefront.hac", "n=8", "--quiet", "--fuel", "3"]);
    assert_eq!(out.status.code(), Some(4), "fuel exhaustion exits 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fuel exhausted"), "{stderr}");
    assert!(stderr.contains("limit exceeded"), "{stderr}");

    let out = hacc(&[
        "programs/wavefront.hac",
        "n=8",
        "--quiet",
        "--mem-limit",
        "100",
    ]);
    assert_eq!(out.status.code(), Some(4), "memory exhaustion exits 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("memory limit"));
}

#[test]
fn generous_limits_do_not_change_the_answer() {
    let plain = hacc(&["programs/wavefront.hac", "n=5", "--quiet"]);
    let limited = hacc(&[
        "programs/wavefront.hac",
        "n=5",
        "--quiet",
        "--fuel",
        "100000",
        "--mem-limit",
        "1000000",
    ]);
    assert_eq!(limited.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&limited.stdout),
        "metering must not perturb results"
    );
}

#[test]
fn injected_fault_is_recovered_and_reported() {
    let clean = hacc(&["programs/wavefront.hac", "n=32", "--quiet"]);
    let faulted = hacc(&[
        "programs/wavefront.hac",
        "n=32",
        "--quiet",
        "--threads",
        "4",
        "--fault-plan",
        "r0c0:panic",
    ]);
    assert_eq!(faulted.status.code(), Some(0), "fault must be absorbed");
    let out = String::from_utf8_lossy(&faulted.stdout);
    assert!(
        out.contains("engine faults: 1"),
        "recovery must be visible: {out}"
    );
    // Modulo the fault report line, the output is identical.
    let sans_fault_line: Vec<&str> = out
        .lines()
        .filter(|l| !l.starts_with("engine faults:"))
        .collect();
    let clean_out = String::from_utf8_lossy(&clean.stdout);
    assert_eq!(
        sans_fault_line.join("\n"),
        clean_out.trim_end(),
        "answer identical despite injected panic"
    );

    let out = hacc(&["programs/wavefront.hac", "n=8", "--fault-plan", "r0c0:zap"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "bad fault plans are usage errors"
    );
}

#[test]
fn env_plan_reaches_the_engine() {
    let out = Command::new(env!("CARGO_BIN_EXE_hacc"))
        .args([
            "programs/wavefront.hac",
            "n=32",
            "--quiet",
            "--threads",
            "4",
        ])
        .env("HAC_FAULT_PLAN", "r0c0:panic")
        .output()
        .expect("spawn hacc");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("engine faults: 1"),
        "HAC_FAULT_PLAN must inject without any flag"
    );
}

#[test]
fn emit_limp_flag() {
    let out = hacc(&[
        "programs/sor.hac",
        "n=5",
        "--quiet",
        "--no-run",
        "--emit",
        "limp",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("limp for update `b` (in place)"),
        "{stdout}"
    );
    assert!(stdout.contains("for i = 2"), "{stdout}");
}

#[test]
fn scalar_reductions_printed() {
    std::fs::write(
        "target/cli_reduce_test.hac",
        "param n;\ninput u (1,n);\nlet s = sum [ u!k | k <- [1..n] ];\n\
         let a = array (1,1) [ 1 := s ];\nresult a;\n",
    )
    .unwrap();
    let out = hacc(&[
        "target/cli_reduce_test.hac",
        "n=4",
        "--quiet",
        "--fill",
        "zero",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scalar `s` = 0"), "{stdout}");
}

#[test]
fn zero_threads_is_a_usage_error() {
    let out = hacc(&["programs/wavefront.hac", "n=6", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(1), "--threads 0 exits 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--threads needs a positive integer"),
        "{stderr}"
    );
    // The serve subcommands reject it the same way.
    let out = hacc(&["serve", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let out = hacc(&["batch", "jobs.json", "--workers", "0"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn deadline_converts_to_fuel_without_reading_the_clock() {
    // A 1 op/ms rate turns a 2 ms deadline into 2 fuel: guaranteed
    // exhaustion, reproducibly, because the rate is injected — the
    // run itself involves no clock at all.
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_hacc"))
            .args([
                "programs/wavefront.hac",
                "n=8",
                "--quiet",
                "--deadline-ms",
                "2",
            ])
            .env_remove("HAC_FAULT_PLAN")
            .env("HAC_OPS_PER_MS", "1")
            .output()
            .expect("spawn hacc")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.status.code(), Some(4), "deadline-derived fuel exhausts");
    let stderr = String::from_utf8_lossy(&a.stderr);
    assert!(stderr.contains("fuel exhausted"), "{stderr}");
    assert_eq!(a.stdout, b.stdout, "bit-identical across runs");
    assert_eq!(a.stderr, b.stderr);

    // The flag wins over the environment; a huge rate completes.
    let out = Command::new(env!("CARGO_BIN_EXE_hacc"))
        .args([
            "programs/wavefront.hac",
            "n=8",
            "--quiet",
            "--deadline-ms",
            "1000",
            "--ops-per-ms",
            "1000000",
        ])
        .env_remove("HAC_FAULT_PLAN")
        .env("HAC_OPS_PER_MS", "1")
        .output()
        .expect("spawn hacc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn batch_subcommand_serves_jobs_with_statuses() {
    let jobs = r#"{"jobs": [
        {"id": "a", "file": "programs/wavefront.hac", "params": {"n": 6}, "fuel": 1000},
        {"id": "b", "file": "programs/wavefront.hac", "params": {"n": 6}, "fuel": 1000},
        {"id": "tight", "file": "programs/wavefront.hac", "params": {"n": 6}, "fuel": 2}
    ]}"#;
    std::fs::write("target/cli_batch_jobs.json", jobs).unwrap();
    let out = hacc(&[
        "batch",
        "target/cli_batch_jobs.json",
        "--ceiling-fuel",
        "100000",
        "--workers",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#""id":"a","status":"ok","tenant":null,"admitted":0,"cache":"miss""#),
        "{stdout}"
    );
    assert!(
        stdout.contains(r#""id":"b","status":"ok","tenant":null,"admitted":1,"cache":"hit""#),
        "{stdout}"
    );
    // Wavefront has an exact cost certificate, so the 2-fuel request
    // is proven short at admission and never executes.
    assert!(
        stdout.contains(r#""id":"tight","status":"over-certificate""#),
        "{stdout}"
    );
    assert!(
        stdout.contains("fuel budget 2 < certified cost 41"),
        "{stdout}"
    );
    assert!(stdout.contains("answer_digest"), "{stdout}");
    // a and b ran the identical program: identical digests.
    let digest = |id: &str| -> String {
        let needle = format!(r#""id":"{id}""#);
        let at = stdout.find(&needle).unwrap();
        let rest = &stdout[at..];
        let key = r#""answer_digest":""#;
        let d = rest.find(key).map(|i| &rest[i + key.len()..]).unwrap();
        d[..16].to_string()
    };
    assert_eq!(digest("a"), digest("b"));
}
