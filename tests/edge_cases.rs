//! Edge cases across the pipeline: unusual bounds, empty ranges,
//! strided generators, zero-size arrays, and parameterized borders.

use std::collections::HashMap;

use hac_core::pipeline::{compile, compile_and_run, run, CompileOptions, ExecMode};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::FuncTable;

fn run_src(src: &str, pairs: &[(&str, i64)]) -> hac_core::pipeline::ExecOutput {
    let env = ConstEnv::from_pairs(pairs.iter().copied());
    compile_and_run(src, &env, &HashMap::new()).unwrap()
}

#[test]
fn zero_based_and_negative_bounds() {
    let out = run_src(
        "param n;\nlet a = array (-2,n) [ i := i * i | i <- [-2..n] ];\n",
        &[("n", 3)],
    );
    let a = out.array("a");
    assert_eq!(a.get("a", &[-2]).unwrap(), 4.0);
    assert_eq!(a.get("a", &[0]).unwrap(), 0.0);
    assert_eq!(a.get("a", &[3]).unwrap(), 9.0);
}

#[test]
fn recurrence_over_negative_range() {
    let out = run_src(
        "param n;\nletrec* a = array (-3,n) \
         ([ -3 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [-2..n] ]);\n",
        &[("n", 2)],
    );
    assert_eq!(out.array("a").data(), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
}

#[test]
fn strided_generators_forward_and_backward() {
    // Write evens forward, odds backward — no collisions, no empties
    // in a guarded sense... written totally:
    let out = run_src(
        "param n;\nlet a = array (1,2*n) \
         ([ i := 1 | i <- [2,4..2*n] ] ++ [ i := 2 | i <- [2*n-1,2*n-3..1] ]);\n",
        &[("n", 4)],
    );
    assert_eq!(
        out.array("a").data(),
        &[2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0]
    );
    // The analysis proves evens and odds disjoint → no checks.
    assert_eq!(out.counters.vm.check_ops, 0);
}

#[test]
fn strided_recurrence_normalizes() {
    // a!(2i) depends on a!(2i-2): a stride-2 chain seeded at 2,
    // odd slots filled constant.
    let out = run_src(
        "param n;\nletrec* a = array (1,2*n) \
         ([ 2 := 1 ] ++ [ i := a!(i-2) + 1 | i <- [4,6..2*n] ] ++ \
          [ i := 0 | i <- [1,3..2*n-1] ]);\n",
        &[("n", 4)],
    );
    assert_eq!(
        out.array("a").data(),
        &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0]
    );
    assert_eq!(out.counters.thunked.thunks_allocated, 0, "thunkless");
}

#[test]
fn empty_generator_and_tiny_sizes() {
    // n = 1 degenerates every recurrence range to empty.
    let out = run_src(
        "param n;\nletrec* a = array (1,n) \
         ([ 1 := 7 ] ++ [ i := a!(i-1) | i <- [2..n] ]);\n",
        &[("n", 1)],
    );
    assert_eq!(out.array("a").data(), &[7.0]);
}

#[test]
fn zero_size_array() {
    let out = run_src(
        "param n;\nlet a = array (1,n) [ i := 0 | i <- [1..n] ];\n",
        &[("n", 0)],
    );
    assert!(out.array("a").is_empty());
}

#[test]
fn single_element_backward_loop() {
    let out = run_src(
        "param n;\nletrec* a = array (1,n) \
         ([ n := 1 ] ++ [ i := a!(i+1) + 1 | i <- [1..n-1] ]);\n",
        &[("n", 2)],
    );
    assert_eq!(out.array("a").data(), &[2.0, 1.0]);
}

#[test]
fn parameters_inside_values_and_guards() {
    let out = run_src(
        "param n, k;\nlet a = array (1,n) \
         ([ i := n * 100 + k | i <- [1..n], i == k ] ++ \
          [ i := i | i <- [1..n], i /= k ]);\n",
        &[("n", 4), ("k", 3)],
    );
    assert_eq!(out.array("a").data(), &[1.0, 2.0, 403.0, 4.0]);
}

#[test]
fn where_bindings_between_loops() {
    let out = run_src(
        "param n;\nlet a = array ((1,1),(n,n)) \
         [* ([ (i,j) := v + j | j <- [1..n] ] where v = i * 10) | i <- [1..n] *];\n",
        &[("n", 3)],
    );
    let a = out.array("a");
    assert_eq!(a.get("a", &[2, 3]).unwrap(), 23.0);
    assert_eq!(a.get("a", &[3, 1]).unwrap(), 31.0);
}

#[test]
fn shadowed_generator_names() {
    // The same index name reused in disjoint generators.
    let out = run_src(
        "param n;\nlet a = array (1,2*n) \
         ([ i := 1 | i <- [1..n] ] ++ [ i + n := 2 | i <- [1..n] ]);\n",
        &[("n", 2)],
    );
    assert_eq!(out.array("a").data(), &[1.0, 1.0, 2.0, 2.0]);
}

#[test]
fn forced_checked_mode_still_correct() {
    let src = "param n;\nletrec* a = array (1,n) \
               ([ 1 := 1 ] ++ [ i := a!(i-1) + 1 | i <- [2..n] ]);\n";
    let env = ConstEnv::from_pairs([("n", 5)]);
    let program = parse_program(src).unwrap();
    let checked = compile(
        &program,
        &env,
        &CompileOptions {
            mode: ExecMode::ForceChecked,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let out = run(&checked, &HashMap::new(), &FuncTable::new()).unwrap();
    assert_eq!(out.array("a").data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    assert!(out.counters.vm.check_ops >= 10, "{:?}", out.counters.vm);
}

#[test]
fn deep_where_chain() {
    let out = run_src(
        "param n;\nlet a = array (1,n) \
         [ i := let x = i * 2; y = x + 1; z = y * y in z - x | i <- [1..n] ];\n",
        &[("n", 3)],
    );
    // z - x = (2i+1)² - 2i
    assert_eq!(out.array("a").data(), &[7.0, 21.0, 43.0]);
}

#[test]
fn min_max_and_builtins_in_values() {
    let out = run_src(
        "param n;\nlet a = array (1,n) \
         [ i := max(min(i, 3), 2) + sqrt(4) | i <- [1..n] ];\n",
        &[("n", 5)],
    );
    assert_eq!(out.array("a").data(), &[4.0, 4.0, 5.0, 5.0, 5.0]);
}
