//! Semantic tests for the paper's §2 strictness story and deeper
//! scheduling shapes: `force-elements` strictification, partial-⊥
//! arrays, non-commutative accumulation, and 3-level nests.

use std::collections::HashMap;

use hac_core::pipeline::{compile, compile_and_run, run, CompileOptions, ExecMode};
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::{parse_comp, parse_program};
use hac_runtime::error::RuntimeError;
use hac_runtime::thunked::ThunkedArray;
use hac_runtime::value::FuncTable;
use hac_workloads as wl;

/// §2: `(force-elements a)!i = ⊥ if ∃j: a!j = ⊥` — a single cyclic
/// element poisons the strictified array even though other elements
/// are individually fine.
#[test]
fn force_elements_is_strict_in_every_element() {
    let mut c = parse_comp("[ 1 := 42 ] ++ [ 2 := a!3 ] ++ [ 3 := a!2 ]").unwrap();
    number_clauses(&mut c);
    let env = ConstEnv::new();
    let others = HashMap::new();
    let funcs = FuncTable::new();
    let a = ThunkedArray::build("a", &[(1, 3)], &c, &env, &others, &funcs).unwrap();
    // Non-strict semantics: element 1 is perfectly demandable...
    assert_eq!(a.demand(&[1]).unwrap(), 42.0);
    // ...but the strict context demands everything, and 2↔3 is ⊥.
    assert!(matches!(
        a.force_elements(),
        Err(RuntimeError::Bottom { .. })
    ));
}

/// §2's hidden-recursion example: `letrec a = g (f a)` makes an
/// apparently non-self-dependent definition recursive. Encoded with
/// two arrays: `v` is defined from `u`, and the caller ties the knot
/// `u = v`. `letrec*`'s strict context turns the hidden cycle into an
/// immediate ⊥ instead of a lurking thunk.
#[test]
fn hidden_recursion_through_the_knot_is_bottom() {
    let src = r#"
param n;
letrec* v = array (1,n) [ i := u!i + 1 | i <- [1..n] ]
      and u = array (1,n) [ i := v!i | i <- [1..n] ];
"#;
    let env = ConstEnv::from_pairs([("n", 3)]);
    let program = parse_program(src).unwrap();
    let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
    let err = run(&compiled, &HashMap::new(), &FuncTable::new()).unwrap_err();
    assert!(matches!(err, RuntimeError::Bottom { .. }), "{err}");
}

/// A mutually recursive group that *is* well founded evaluates under
/// the same mechanism.
#[test]
fn grounded_mutual_recursion_succeeds() {
    let src = r#"
param n;
letrec* even = array (0,n) ([ 0 := 1 ] ++ [ i := odd!(i-1) | i <- [1..n] ])
      and odd  = array (0,n) ([ 0 := 0 ] ++ [ i := even!(i-1) | i <- [1..n] ]);
result even, odd;
"#;
    let env = ConstEnv::from_pairs([("n", 6)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    assert_eq!(
        out.array("even").data(),
        &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]
    );
    assert_eq!(
        out.array("odd").data(),
        &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]
    );
}

/// Accumulated arrays preserve subscript/value list order for
/// non-commutative combining functions end to end (§3/§7).
#[test]
fn accumulated_subtraction_preserves_order() {
    let src = "param n;\nlet h = accumArray (-) 0 (1,1) [ 1 := i | i <- [1..n] ];\n";
    let env = ConstEnv::from_pairs([("n", 4)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    // (((0-1)-2)-3)-4 = -10.
    assert_eq!(out.array("h").data(), &[-10.0]);
}

/// A 3-level wavefront: all three loops forward, thunkless, matching
/// the thunked baseline.
#[test]
fn three_level_wavefront() {
    let src = r#"
param n;
letrec* a = array ((1,1,1),(n,n,n))
   ([ (1,j,k) := 1 | j <- [1..n], k <- [1..n] ] ++
    [ (i,1,k) := 1 | i <- [2..n], k <- [1..n] ] ++
    [ (i,j,1) := 1 | i <- [2..n], j <- [2..n] ] ++
    [ (i,j,k) := a!(i-1,j,k) + a!(i,j-1,k) + a!(i,j,k-1)
       | i <- [2..n], j <- [2..n], k <- [2..n] ]);
"#;
    let env = ConstEnv::from_pairs([("n", 5)]);
    let program = parse_program(src).unwrap();
    let auto = compile(&program, &env, &CompileOptions::default()).unwrap();
    let thunked = compile(
        &program,
        &env,
        &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let funcs = FuncTable::new();
    let a = run(&auto, &HashMap::new(), &funcs).unwrap();
    let t = run(&thunked, &HashMap::new(), &funcs).unwrap();
    assert_eq!(a.array("a").data(), t.array("a").data());
    assert_eq!(a.counters.thunked.thunks_allocated, 0, "thunkless 3-D");
    // 3-D trinomial lattice value at the far corner.
    assert_eq!(a.array("a").get("a", &[2, 2, 2]).unwrap(), 3.0);
}

/// Mixed directions across levels: outer forward, middle backward,
/// inner forward — from a single read `a!(i-1, j+1, k-1)`.
#[test]
fn zigzag_three_level_directions() {
    let src = r#"
param n;
letrec* a = array ((1,1,1),(n,n,n))
   ([ (1,j,k) := j + k | j <- [1..n], k <- [1..n] ] ++
    [ (i,n,k) := i + k | i <- [2..n], k <- [1..n] ] ++
    [ (i,j,1) := i + j | i <- [2..n], j <- [1..n-1] ] ++
    [ (i,j,k) := a!(i-1,j+1,k-1) + 1
       | i <- [2..n], j <- [1..n-1], k <- [2..n] ]);
"#;
    let env = ConstEnv::from_pairs([("n", 4)]);
    let program = parse_program(src).unwrap();
    let auto = compile(&program, &env, &CompileOptions::default()).unwrap();
    let thunked = compile(
        &program,
        &env,
        &CompileOptions {
            mode: ExecMode::ForceThunked,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let funcs = FuncTable::new();
    let a = run(&auto, &HashMap::new(), &funcs).unwrap();
    let t = run(&thunked, &HashMap::new(), &funcs).unwrap();
    assert_eq!(a.array("a").data(), t.array("a").data());
    assert_eq!(a.counters.thunked.thunks_allocated, 0);
    // The report should show the interior nest carried at all levels.
    assert!(!auto.report.arrays.is_empty());
}

/// Chained updates stay single-threaded: two consecutive in-place
/// `bigupd`s over one buffer.
#[test]
fn chained_updates_single_threaded() {
    let src = r#"
param n;
input a (1,n);
b = bigupd a [ i := a!i * 2 | i <- [1..n] ];
c = bigupd b [ i := b!i + 1 | i <- [1..n] ];
result c;
"#;
    let n = 6;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::vector(n, |i| i as f64);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), u);
    let out = compile_and_run(src, &env, &inputs).unwrap();
    let c = out.array("c");
    for i in 1..=n {
        assert_eq!(c.get("c", &[i]).unwrap(), (2 * i + 1) as f64);
    }
    assert_eq!(out.counters.vm.elements_copied, 0, "both updates in place");
}

/// The §2 `letrec*` scoping promise: every element is evaluated before
/// the binding is visible, so later bindings can rely on totality.
#[test]
fn letrec_star_strict_context_orders_bindings() {
    let src = r#"
param n;
letrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := a!(i-1) + 1 | i <- [2..n] ]);
let s = array (1,1) [ 1 := a!n * 10 ];
result s;
"#;
    let env = ConstEnv::from_pairs([("n", 5)]);
    let out = compile_and_run(src, &env, &HashMap::new()).unwrap();
    assert_eq!(out.array("s").data(), &[50.0]);
}
