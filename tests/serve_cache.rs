//! The bounded program cache's ledger, under fire: random
//! lookup/insert interleavings must keep the reconciliation
//! invariants (`hits + misses == lookups`,
//! `insertions - evictions == live`, `live <= cap`) at *every* step,
//! eviction must be harmless — a re-admitted evicted program answers
//! bit-identically — and the default capacity must actually hold
//! against a flood of unique programs.

use std::sync::Arc;

use hac::core::pipeline::{compile, CompileOptions};
use hac::lang::env::ConstEnv;
use hac::serve::cache::ProgramCache;
use hac::serve::{Request, ServeOptions, Server, Status, DEFAULT_CACHE_CAP};
use hac_workloads::XorShift;
use proptest::prelude::*;

/// The cheapest compilable program: one 1-element array per unique
/// parameter binding, so thousands of distinct cache keys stay cheap.
const TINY: &str = "param n;\nlet a = array (1,1) [ i := n | i <- [1..1] ];\n";

fn tiny_compiled() -> Arc<hac::core::pipeline::Compiled> {
    let program = hac::lang::parser::parse_program(TINY).unwrap();
    let mut env = ConstEnv::new();
    env.bind("n", 1);
    Arc::new(compile(&program, &env, &CompileOptions::default()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences over random capacities: the counters
    /// reconcile and the capacity holds after every single operation,
    /// not just at the end.
    #[test]
    fn cache_ledger_reconciles_at_every_step(seed in any::<u64>()) {
        let mut rng = XorShift::new(seed | 1);
        let cap = (rng.next_u64() % 8) as usize; // includes 0 = unbounded
        let mut cache = ProgramCache::new(cap);
        let program = tiny_compiled();
        for ordinal in 0..200u64 {
            let key = rng.next_u64() % 24;
            if rng.next_u64().is_multiple_of(2) {
                cache.lookup(key, ordinal);
            } else {
                cache.insert(key, Arc::clone(&program), ordinal);
            }
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, s.lookups, "seed {}", seed);
            prop_assert_eq!(s.insertions - s.evictions, s.live, "seed {}", seed);
            prop_assert_eq!(s.live as usize, cache.len(), "seed {}", seed);
            if cap > 0 {
                prop_assert!(
                    cache.len() <= cap,
                    "seed {}: {} entries over cap {}", seed, cache.len(), cap
                );
            } else {
                prop_assert_eq!(s.evictions, 0, "seed {}: unbounded never evicts", seed);
            }
        }
    }
}

/// Eviction is never incorrect, only slower: force a program out of a
/// tiny cache, re-admit it, and demand the recompiled run is
/// bit-identical — digest, remaining fuel, counters, verdicts.
#[test]
fn rerunning_an_evicted_program_is_bit_identical() {
    let server = Server::new(ServeOptions {
        cache_cap: 2,
        ..ServeOptions::default()
    });
    let req = |id: &str, n: i64| {
        let mut r = Request::new(id, hac_workloads::wavefront_source());
        r.params.push(("n".to_string(), n));
        r.fuel = Some(10_000);
        r
    };
    let first = server.handle(&req("first", 6));
    assert_eq!(first.status, Status::Ok);
    assert_eq!(first.cache_hit, Some(false));

    // Two different programs push `n=6` out of the 2-entry cache.
    assert_eq!(server.handle(&req("fill1", 7)).status, Status::Ok);
    let fill2 = server.handle(&req("fill2", 8));
    assert_eq!(fill2.status, Status::Ok);
    assert!(
        server.cache_stats().evictions >= 1,
        "the 2-entry cache evicted: {:?}",
        server.cache_stats()
    );

    let again = server.handle(&req("again", 6));
    assert_eq!(again.cache_hit, Some(false), "n=6 was evicted: recompiles");
    assert_eq!(again.status, first.status);
    assert_eq!(again.answer_digest, first.answer_digest);
    assert_eq!(again.fuel_left, first.fuel_left);
    assert_eq!(again.counters_digest, first.counters_digest);
    assert_eq!(again.verdicts, first.verdicts);
}

/// A starved request exhausts at the identical point before and after
/// its program is evicted and recompiled — the limit path is as
/// deterministic as the success path.
#[test]
fn evicted_limit_outcomes_are_bit_identical_too() {
    let server = Server::new(ServeOptions {
        cache_cap: 1,
        ..ServeOptions::default()
    });
    let starved = || {
        // Gauss–Seidel: its certificate is only an upper bound, so the
        // shortfall is found by the meter mid-run, not at admission.
        let mut r = Request::new("s", hac_workloads::sor_source());
        r.params.push(("n".to_string(), 8));
        r.fuel = Some(17);
        r
    };
    let first = server.handle(&starved());
    assert_eq!(first.status, Status::Limit);
    // Any other program evicts it from the singleton cache.
    let mut other = Request::new("o", TINY);
    other.params.push(("n".to_string(), 3));
    assert_eq!(server.handle(&other).status, Status::Ok);
    let again = server.handle(&starved());
    assert_eq!(again.cache_hit, Some(false));
    assert_eq!(again.fuel_left, first.fuel_left);
    assert_eq!(again.error, first.error);
}

/// The default capacity holds against a flood: ten thousand unique
/// programs leave exactly `DEFAULT_CACHE_CAP` residents, with the
/// ledger accounting for every eviction.
#[test]
fn ten_thousand_unique_programs_hold_the_cache_at_cap() {
    let server = Server::new(ServeOptions::default());
    assert_eq!(server.options().cache_cap, DEFAULT_CACHE_CAP);
    const FLOOD: usize = 10_000;
    let reqs: Vec<Request> = (0..FLOOD)
        .map(|i| {
            // A unique parameter binding is a unique compiled program,
            // hence a unique cache key.
            let mut r = Request::new(format!("u{i}"), TINY);
            r.params.push(("n".to_string(), i as i64));
            r
        })
        .collect();
    let out = server.run_batch(&reqs, 8);
    assert!(out.iter().all(|r| r.status == Status::Ok));
    assert!(out.iter().all(|r| r.cache_hit == Some(false)));
    let s = server.cache_stats();
    assert_eq!(s.live, DEFAULT_CACHE_CAP as u64, "held at cap");
    assert_eq!(s.cap, DEFAULT_CACHE_CAP as u64);
    assert_eq!(s.insertions, FLOOD as u64);
    assert_eq!(s.evictions, (FLOOD - DEFAULT_CACHE_CAP) as u64);
    assert_eq!(s.hits, 0);
    assert_eq!(s.misses, FLOOD as u64);
}
