//! The weighted-fair admission scheduler's contract, pinned two ways:
//! a property test proving the classical stride-scheduling bound —
//! while both tenants stay backlogged, every admitted prefix holds
//! each tenant's share within one request of its weight fraction — and
//! a golden schedule file that freezes the exact interleaving for a
//! 3:2 weight split, so any change to the scheduler's arithmetic or
//! tie-breaking shows up as a one-line diff.

use hac::serve::sched::{fair_order, tenant_weights};
use hac::serve::{Request, Server};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two backlogged tenants at weights `w1:w2`: for every prefix of
    /// k admissions (while neither queue has drained), tenant a's
    /// admitted count stays within one request of the ideal
    /// `k·w1/(w1+w2)` — i.e. `|a_seen·(w1+w2) − k·w1| ≤ w1+w2`.
    #[test]
    fn backlogged_prefixes_track_the_weight_ratio(seed in any::<u64>()) {
        let w1 = 1 + (seed % 5);
        let w2 = 1 + ((seed >> 8) % 5);
        let per_tenant = 4 + ((seed >> 16) % 9) as usize;
        // Arrival pattern varies with the seed: a-block-first,
        // b-block-first, or alternating. The bound is arrival-pattern
        // independent because the whole list is pending from the start.
        let mut arrivals: Vec<(&str, u64)> = Vec::new();
        match (seed >> 24) % 3 {
            0 => {
                arrivals.extend(std::iter::repeat_n(("a", w1), per_tenant));
                arrivals.extend(std::iter::repeat_n(("b", w2), per_tenant));
            }
            1 => {
                arrivals.extend(std::iter::repeat_n(("b", w2), per_tenant));
                arrivals.extend(std::iter::repeat_n(("a", w1), per_tenant));
            }
            _ => {
                for _ in 0..per_tenant {
                    arrivals.push(("a", w1));
                    arrivals.push(("b", w2));
                }
            }
        }
        let a_total = per_tenant;
        let order = fair_order(&arrivals);
        prop_assert_eq!(order.len(), arrivals.len());

        let mut a_seen = 0u64;
        let mut b_seen = 0u64;
        for (k, &i) in order.iter().enumerate() {
            if arrivals[i].0 == "a" {
                a_seen += 1;
            } else {
                b_seen += 1;
            }
            let k = (k + 1) as u64;
            if a_seen < a_total as u64 && b_seen < a_total as u64 {
                let ideal = k * w1;
                let got = a_seen * (w1 + w2);
                prop_assert!(
                    got.abs_diff(ideal) <= w1 + w2,
                    "seed {}: w {}:{} prefix {}: a={} b={}",
                    seed, w1, w2, k, a_seen, b_seen
                );
            }
        }
        prop_assert_eq!(a_seen as usize, a_total, "every request admitted");
        prop_assert_eq!(b_seen as usize, a_total);
    }

    /// The schedule is a permutation and a pure function of the list —
    /// computing it twice, or through `Server::predicted_order`, gives
    /// the same answer.
    #[test]
    fn schedule_is_a_stable_permutation(seed in any::<u64>()) {
        let tenants = ["", "x", "y", "z"];
        let arrivals: Vec<(&str, u64)> = (0..12)
            .map(|i| {
                let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i);
                (tenants[(h % 4) as usize], 1 + (h >> 8) % 5)
            })
            .collect();
        let a = fair_order(&arrivals);
        let b = fair_order(&arrivals);
        prop_assert_eq!(&a, &b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..arrivals.len()).collect::<Vec<_>>());

        // The server-level wrapper agrees with the raw scheduler.
        let reqs: Vec<Request> = arrivals
            .iter()
            .enumerate()
            .map(|(i, (t, w))| {
                let mut r = Request::new(format!("r{i}"), "param n;\n");
                if !t.is_empty() {
                    r.tenant = Some((*t).to_string());
                }
                r.weight = Some(*w);
                r
            })
            .collect();
        prop_assert_eq!(Server::predicted_order(&reqs), a);
    }
}

/// The frozen 3:2 schedule: tenant `a` (weight 3) and tenant `b`
/// (weight 2), ten requests each, all pending from the start. The
/// golden file under `tests/golden/` is the exact admission trace; any
/// scheduler change that perturbs the interleaving fails this test
/// with a readable diff.
#[test]
fn golden_three_to_two_schedule() {
    let mut arrivals: Vec<(&str, u64)> = Vec::new();
    for _ in 0..10 {
        arrivals.push(("a", 3));
        arrivals.push(("b", 2));
    }
    let weights = tenant_weights(&arrivals);
    let order = fair_order(&arrivals);

    let mut rendered = String::from("# fair_order admission trace\n");
    for (t, w) in &weights {
        rendered.push_str(&format!("# tenant {t} weight {w}\n"));
    }
    let mut counts = std::collections::BTreeMap::new();
    for (k, &i) in order.iter().enumerate() {
        let tenant = arrivals[i].0;
        *counts.entry(tenant).or_insert(0u64) += 1;
        rendered.push_str(&format!(
            "{k:>2}: arrival {i:>2} tenant {tenant} (a={} b={})\n",
            counts.get("a").copied().unwrap_or(0),
            counts.get("b").copied().unwrap_or(0),
        ));
    }

    let golden_path = "tests/golden/fair_schedule.txt";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, want,
        "schedule drifted from {golden_path} (regenerate with UPDATE_GOLDEN=1 if intended)"
    );
}
