//! The incremental-serving differential oracle: every response the
//! materialized-result cache produces — memoized hits and `bigupd`
//! delta recomputations alike — must be **byte-identical** (answer
//! digest, work-counter digest, remaining fuel, error class and text)
//! to a cold full recomputation of the same request on a cache-disabled
//! server, across every engine, thread count, and fusion mode:
//!
//!   * the (cold, warm hit, warm delta) triple for each bigupd-rooted
//!     `programs/*.hac` kernel, over engines {treewalk, tape, partape}
//!     × threads {1, 2, 4, 8} × {fuse, no-fuse};
//!   * fuel and memory limit ladders: exhaustion mid-delta must fall
//!     back to the metered full run and reproduce the cold error
//!     byte-for-byte;
//!   * proptest-driven random update sets — empty bands, single pokes,
//!     overlapping (colliding) clauses, and out-of-footprint writes —
//!     against a fresh full-recompute oracle per request;
//!   * a golden file pinning the daemon's `result_cache` stats ledger
//!     (`tests/golden/result_cache_stats.txt`, regenerate with
//!     `UPDATE_GOLDEN=1`).
//!
//! Every server here pins the empty fault plan so the oracle stays
//! deterministic under an ambient `HAC_FAULT_PLAN` (fault-plan servers
//! bypass the result cache by design).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use hac::core::pipeline::Engine;
use hac::serve::daemon::{self, DaemonOptions};
use hac::serve::{Request, Response, ResultClass, ServeOptions, Server, Status};
use hac_runtime::governor::FaultPlan;
use hac_workloads::XorShift;
use proptest::prelude::*;

const ENGINES: [Engine; 3] = [Engine::TreeWalk, Engine::Tape, Engine::ParTape];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One bigupd-rooted kernel with a base parameter set and a "slide"
/// that differs only in update-only parameters (for `sor.hac` no such
/// parameters exist, so the slide repeats the base and the warm path
/// serves a plain hit instead of a delta).
struct Prog {
    path: &'static str,
    base: &'static [(&'static str, i64)],
    slide: &'static [(&'static str, i64)],
    delta_capable: bool,
    /// Full element count of the result — `delta_elems` may never
    /// exceed it.
    max_elems: u64,
}

const PROGS: [Prog; 3] = [
    Prog {
        path: "programs/incremental/jacobi_poke.hac",
        base: &[("n", 6), ("ui", 3), ("uj", 4), ("uv", 55)],
        slide: &[("n", 6), ("ui", 2), ("uj", 5), ("uv", 99)],
        delta_capable: true,
        max_elems: 36,
    },
    Prog {
        path: "programs/incremental/band_poke.hac",
        base: &[("n", 8), ("lo", 3), ("hi", 5), ("uv", 70)],
        slide: &[("n", 8), ("lo", 2), ("hi", 7), ("uv", 10)],
        delta_capable: true,
        max_elems: 8,
    },
    Prog {
        path: "programs/sor.hac",
        base: &[("n", 6)],
        slide: &[("n", 6)],
        delta_capable: false,
        max_elems: 36,
    },
];

fn opts(engine: Engine, threads: usize, fuse: bool, result_cache_cap: usize) -> ServeOptions {
    ServeOptions {
        engine,
        threads,
        fuse,
        result_cache_cap,
        // The empty plan overrides any ambient HAC_FAULT_PLAN: the
        // oracle must not inherit nondeterminism from the environment.
        faults: Some(FaultPlan::default()),
        ..ServeOptions::default()
    }
}

fn request(id: &str, src: &str, params: &[(&str, i64)]) -> Request {
    let mut r = Request::new(id, src);
    for (k, v) in params {
        r.params.push(((*k).to_string(), *v));
    }
    r
}

/// The byte-identity contract: everything except the request identity
/// and the `result_cache`/`delta_elems` classification fields.
fn assert_same_outcome(got: &Response, want: &Response, context: &str) {
    assert_eq!(got.status, want.status, "{context}: status");
    assert_eq!(got.error, want.error, "{context}: error text");
    assert_eq!(
        got.answer_digest, want.answer_digest,
        "{context}: answer digest"
    );
    assert_eq!(
        got.counters_digest, want.counters_digest,
        "{context}: counters digest"
    );
    assert_eq!(got.fuel_left, want.fuel_left, "{context}: remaining fuel");
    assert_eq!(
        got.engine_faults, want.engine_faults,
        "{context}: fault counter"
    );
}

/// The full matrix: (cold miss, warm hit, warm delta) per kernel, per
/// engine, per thread count, fused and unfused — the warm responses
/// must be byte-identical to a cache-disabled server's cold runs.
#[test]
fn warm_serving_is_byte_identical_to_cold_across_engines_threads_and_fusion() {
    for prog in &PROGS {
        let src = std::fs::read_to_string(prog.path).expect(prog.path);
        for engine in ENGINES {
            for threads in THREADS {
                for fuse in [true, false] {
                    let ctx = format!("{} {engine:?} t{threads} fuse={fuse}", prog.path);
                    let warm = Server::new(opts(engine, threads, fuse, 256));
                    let cold = Server::new(opts(engine, threads, fuse, 0));

                    let base_cold = cold.handle(&request("base", &src, prog.base));
                    assert_eq!(base_cold.status, Status::Ok, "{ctx}: {:?}", base_cold.error);
                    assert_eq!(base_cold.result_cache, None, "{ctx}: cap 0 bypasses");

                    let miss = warm.handle(&request("miss", &src, prog.base));
                    assert_eq!(miss.result_cache, Some(ResultClass::Miss), "{ctx}");
                    assert_same_outcome(&miss, &base_cold, &format!("{ctx}: miss vs cold"));

                    let hit = warm.handle(&request("hit", &src, prog.base));
                    assert_eq!(hit.result_cache, Some(ResultClass::Hit), "{ctx}");
                    assert_eq!(hit.delta_elems, None, "{ctx}");
                    assert_same_outcome(&hit, &base_cold, &format!("{ctx}: hit vs cold"));

                    let slide_cold = cold.handle(&request("slide-cold", &src, prog.slide));
                    let slide = warm.handle(&request("slide", &src, prog.slide));
                    if prog.delta_capable {
                        assert_eq!(slide.result_cache, Some(ResultClass::Delta), "{ctx}");
                        let elems = slide.delta_elems.expect("delta carries its dirty count");
                        assert!(
                            elems <= prog.max_elems,
                            "{ctx}: delta_elems {elems} > {}",
                            prog.max_elems
                        );
                    } else {
                        assert_eq!(slide.result_cache, Some(ResultClass::Hit), "{ctx}");
                    }
                    assert_same_outcome(&slide, &slide_cold, &format!("{ctx}: delta vs cold"));
                }
            }
        }
    }
}

/// Fuel and memory ladders: the same sliding request is served warm
/// (after a generously-budgeted family fill) and cold, under budgets
/// from certainly-exhausting to comfortable. Exhaustion mid-delta must
/// fall back to the metered full run, so status, error text, and
/// remaining fuel match the cold run at every rung.
#[test]
fn limit_ladders_match_cold_outcomes_byte_for_byte() {
    for prog in &PROGS[..2] {
        let src = std::fs::read_to_string(prog.path).expect(prog.path);
        for fuel in [0u64, 1, 2, 4, 8, 12, 20, 40, 100, 10_000] {
            let warm = Server::new(opts(Engine::ParTape, 2, true, 256));
            let mut fill = request("fill", &src, prog.base);
            fill.fuel = Some(10_000);
            assert_eq!(warm.handle(&fill).status, Status::Ok, "{}", prog.path);
            let mut tight = request("tight", &src, prog.slide);
            tight.fuel = Some(fuel);
            let w = warm.handle(&tight);

            let cold = Server::new(opts(Engine::ParTape, 2, true, 0));
            let mut ctl = request("ctl", &src, prog.slide);
            ctl.fuel = Some(fuel);
            let c = cold.handle(&ctl);
            assert_same_outcome(&w, &c, &format!("{} fuel={fuel}", prog.path));
        }
        for mem in [64u64, 256, 1024, 4096, 1 << 20] {
            let warm = Server::new(opts(Engine::ParTape, 2, true, 256));
            let mut fill = request("fill", &src, prog.base);
            fill.mem_bytes = Some(1 << 20);
            warm.handle(&fill);
            let mut tight = request("tight", &src, prog.slide);
            tight.mem_bytes = Some(mem);
            let w = warm.handle(&tight);

            let cold = Server::new(opts(Engine::ParTape, 2, true, 0));
            let mut ctl = request("ctl", &src, prog.slide);
            ctl.mem_bytes = Some(mem);
            let c = cold.handle(&ctl);
            assert_same_outcome(&w, &c, &format!("{} mem={mem}", prog.path));
        }
    }
}

/// Overlapping update clauses write the same cell twice. Whatever the
/// pipeline decides (a certain-collision compile error, per the
/// paper's semantics), the warm server must decide it identically.
#[test]
fn duplicate_coordinate_updates_match_cold_decisions() {
    let src = "param n; param lo; param uv;\n\
        input u (1,n);\n\
        let v = array (1,n) [ i := (u!i + 1) / 2 | i <- [1..n] ];\n\
        w = bigupd v ([ lo := uv ] ++ [ lo := uv + 1 ]);\n\
        result w;\n";
    let params: &[(&str, i64)] = &[("n", 8), ("lo", 3), ("uv", 9)];
    let warm = Server::new(opts(Engine::ParTape, 1, true, 256));
    let cold = Server::new(opts(Engine::ParTape, 1, true, 0));
    let c = cold.handle(&request("c", src, params));
    let a = warm.handle(&request("a", src, params));
    let b = warm.handle(&request("b", src, params));
    assert_eq!(a.status, c.status);
    assert_eq!(a.error, c.error);
    assert_eq!(b.status, c.status);
    assert_eq!(b.error, c.error);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random update sets against the full-recompute oracle: one warm
    /// server absorbs a stream of sliding band and point updates —
    /// empty bands (`lo > hi`), single cells, full-array bands, and
    /// out-of-footprint coordinates that must fail with the cold
    /// run's exact bounds error — and every response is checked
    /// against a fresh cache-disabled server.
    #[test]
    fn random_update_sets_match_the_full_recompute_oracle(seed in any::<u64>()) {
        let band = std::fs::read_to_string("programs/incremental/band_poke.hac").expect("band_poke");
        let jacobi = std::fs::read_to_string("programs/incremental/jacobi_poke.hac").expect("jacobi_poke");
        let mut rng = XorShift::new(seed | 1);
        let warm = Server::new(opts(Engine::ParTape, 2, true, 256));
        let mut deltas = 0u64;
        for i in 0..12 {
            let r = if rng.next_u64().is_multiple_of(2) {
                // lo/hi in [-1, n+2]: empty, interior, and out of
                // footprint are all reachable.
                let lo = (rng.next_u64() % 10) as i64 - 1;
                let hi = (rng.next_u64() % 10) as i64 - 1;
                let uv = (rng.next_u64() % 100) as i64;
                request(
                    &format!("b{i}"),
                    &band,
                    &[("n", 8), ("lo", lo), ("hi", hi), ("uv", uv)],
                )
            } else {
                let ui = (rng.next_u64() % 8) as i64; // 0..7: 0 is out of bounds
                let uj = (rng.next_u64() % 8) as i64;
                let uv = (rng.next_u64() % 100) as i64;
                request(
                    &format!("j{i}"),
                    &jacobi,
                    &[("n", 6), ("ui", ui), ("uj", uj), ("uv", uv)],
                )
            };
            let w = warm.handle(&r);
            let cold = Server::new(opts(Engine::ParTape, 2, true, 0));
            let c = cold.handle(&r);
            prop_assert_eq!(w.status, c.status, "seed {} req {}", seed, r.id);
            prop_assert_eq!(&w.error, &c.error, "seed {} req {}", seed, r.id);
            prop_assert_eq!(&w.answer_digest, &c.answer_digest, "seed {} req {}", seed, r.id);
            prop_assert_eq!(&w.counters_digest, &c.counters_digest, "seed {} req {}", seed, r.id);
            if w.result_cache == Some(ResultClass::Delta) {
                deltas += 1;
                let elems = w.delta_elems.expect("delta carries its dirty count");
                prop_assert!(elems <= 36, "seed {}: delta_elems {} too large", seed, elems);
            }
        }
        // The stream reuses two prefix families across 12 requests:
        // deltas must actually happen or the test is vacuous.
        prop_assert!(deltas >= 1, "seed {}: no deltas exercised", seed);
    }
}

/// The daemon's `result_cache` stats ledger over a fixed loopback
/// script — one miss, one hit, one delta — pinned against a golden
/// file. Regenerate with `UPDATE_GOLDEN=1`.
#[test]
fn daemon_result_cache_ledger_matches_the_golden_file() {
    let src = std::fs::read_to_string("programs/incremental/band_poke.hac").expect("band_poke");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = Arc::new(Server::new(opts(Engine::ParTape, 1, true, 256)));
    let daemon =
        daemon::spawn(Arc::clone(&server), listener, DaemonOptions::default()).expect("spawn");
    let stream = TcpStream::connect(daemon.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = stream;
    let mut send_recv = |line: &str| {
        writeln!(out, "{line}").expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    };

    let base: &[(&str, i64)] = &[("n", 8), ("lo", 3), ("hi", 5), ("uv", 70)];
    let slide: &[(&str, i64)] = &[("n", 8), ("lo", 2), ("hi", 7), ("uv", 10)];
    let miss = send_recv(&request("m", &src, base).to_json().to_string());
    assert!(miss.contains(r#""result_cache":"miss""#), "{miss}");
    let hit = send_recv(&request("h", &src, base).to_json().to_string());
    assert!(hit.contains(r#""result_cache":"hit""#), "{hit}");
    let delta = send_recv(&request("d", &src, slide).to_json().to_string());
    assert!(delta.contains(r#""result_cache":"delta""#), "{delta}");
    assert!(delta.contains(r#""delta_elems":6"#), "{delta}");

    let stats = send_recv("{\"control\":\"stats\"}");
    let key = "\"result_cache\":";
    let at = stats.find(key).expect("stats carry a result_cache section") + key.len();
    let end = stats[at..].find('}').expect("object closes") + at + 1;
    let rendered = format!("{}\n", &stats[at..end]);

    let golden_path = "tests/golden/result_cache_stats.txt";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    } else {
        let want = std::fs::read_to_string(golden_path)
            .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
        assert_eq!(
            rendered, want,
            "result-cache ledger drifted from {golden_path}; regenerate with UPDATE_GOLDEN=1"
        );
    }

    assert!(send_recv("{\"control\":\"shutdown\"}").contains(r#""ok":true"#));
    daemon.join().expect("clean shutdown");
}
