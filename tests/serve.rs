//! Integration tests for the multi-tenant serving layer: the compiled
//! -program cache must skip the front end on repeats, deadlines must
//! convert to fuel without any engine reading the clock, and — the
//! core isolation property — a heavy tenant exhausting its budget must
//! never change a light tenant's answer, fuel balance, or counters.

use hac::core::deadline::DeadlineGovernor;
use hac::core::pipeline::{Engine, ExecMode};
use hac::serve::{Request, Response, ServeOptions, Server, Status};
use hac_runtime::governor::Limits;
use hac_workloads as wl;

fn request(id: &str, src: &str, n: i64) -> Request {
    let mut r = Request::new(id, src);
    r.params.push(("n".to_string(), n));
    r
}

fn light_request(id: &str) -> Request {
    let mut r = request(id, wl::wavefront_source(), 8);
    // ~70 metered ops for n=8; a 200-op budget is comfortable.
    r.fuel = Some(200);
    r.mem_bytes = Some(2048);
    r
}

fn heavy_request(id: &str) -> Request {
    // Gauss–Seidel's certificate is inexact (the bigupd unit), so
    // admission cannot prove the shortfall — the request really runs
    // and exhausts mid-flight, hammering the settle path.
    let mut r = request(id, wl::sor_source(), 24);
    // Nowhere near enough for n=24: exhausts mid-run, every time.
    r.fuel = Some(50);
    r.mem_bytes = Some(16384);
    r
}

fn assert_light_outcome(resp: &Response, want: &Response, context: &str) {
    assert_eq!(resp.status, Status::Ok, "{context}: light tenant completes");
    assert_eq!(
        resp.answer_digest, want.answer_digest,
        "{context}: light tenant's answer digest"
    );
    assert_eq!(
        resp.fuel_left, want.fuel_left,
        "{context}: light tenant's remaining fuel"
    );
    assert_eq!(
        resp.engine_faults, want.engine_faults,
        "{context}: light tenant's fault counter"
    );
    assert_eq!(
        resp.verdicts, want.verdicts,
        "{context}: light tenant's compile verdicts"
    );
}

/// The isolation property, head on: run the light tenant solo, then
/// race it against heavy tenants that exhaust their budgets, over
/// several stripe widths and repetitions. Every observable of the
/// light tenant must be bit-identical to the solo run.
#[test]
fn heavy_tenant_exhaustion_never_perturbs_light_tenant() {
    let solo_server = Server::new(ServeOptions::default());
    let solo = solo_server.handle(&light_request("solo"));
    assert_eq!(solo.status, Status::Ok);
    assert!(solo.answer_digest.is_some());
    assert!(solo.fuel_left.is_some());

    for stripes in [1, 4, 8] {
        let server = Server::new(ServeOptions {
            // Pool sized so every tenant admits; the heavies exhaust
            // *their own* budgets mid-run, hammering the settle path
            // while the light tenant executes.
            ceiling: Limits {
                fuel: Some(4_000),
                mem_bytes: Some(1 << 20),
            },
            stripes,
            ..ServeOptions::default()
        });
        for round in 0..5 {
            let reqs = vec![
                heavy_request(&format!("h1-{round}")),
                light_request(&format!("light-{round}")),
                heavy_request(&format!("h2-{round}")),
                heavy_request(&format!("h3-{round}")),
            ];
            let out = server.run_batch(&reqs, 4);
            assert_eq!(out[0].status, Status::Limit, "heavy tenant exhausts");
            assert_eq!(out[2].status, Status::Limit);
            assert_eq!(out[3].status, Status::Limit);
            assert_light_outcome(&out[1], &solo, &format!("stripes={stripes} round={round}"));
        }
        // Memory always settles back, except the bytes the result
        // cache's family snapshots still hold (Gauss–Seidel is
        // bigupd-rooted, so its prefix state stays resident for the
        // delta path); fuel is down by exactly what was spent — never
        // more than the pool.
        let resident = server.result_cache_stats().resident_bytes;
        assert_eq!(server.ceiling().mem_available(), (1 << 20) - resident);
        assert!(server.ceiling().fuel_available() <= 4_000);
    }
}

#[test]
fn cache_hits_skip_the_front_end() {
    let server = Server::new(ServeOptions::default());
    let first = server.handle(&light_request("a"));
    assert_eq!(first.cache_hit, Some(false));
    let s = server.cache_stats();
    assert_eq!((s.hits, s.misses), (0, 1));
    for i in 0..10 {
        let resp = server.handle(&light_request(&format!("r{i}")));
        assert_eq!(resp.cache_hit, Some(true));
        assert_eq!(resp.answer_digest, first.answer_digest);
    }
    // Ten repeats, zero extra compiles.
    let s = server.cache_stats();
    assert_eq!((s.hits, s.misses), (10, 1));
    // A different parameter binding is a different program.
    let other = server.handle(&request("other", wl::wavefront_source(), 9));
    assert_eq!(other.cache_hit, Some(false));
    let s = server.cache_stats();
    assert_eq!((s.hits, s.misses), (10, 2));
    assert_eq!(s.hits + s.misses, s.lookups);
    assert_eq!(s.insertions - s.evictions, s.live);
}

#[test]
fn cache_is_keyed_by_mode_and_engine_too() {
    let server = Server::new(ServeOptions::default());
    let mut a = request("a", wl::wavefront_source(), 8);
    a.engine = Some(Engine::Tape);
    let mut b = request("b", wl::wavefront_source(), 8);
    b.engine = Some(Engine::TreeWalk);
    let mut c = request("c", wl::wavefront_source(), 8);
    c.mode = Some(ExecMode::ForceThunked);
    let ra = server.handle(&a);
    let rb = server.handle(&b);
    let rc = server.handle(&c);
    let s = server.cache_stats();
    assert_eq!((s.hits, s.misses), (0, 3), "three distinct cache keys");
    // Engines and modes agree on the answer, of course.
    assert_eq!(ra.answer_digest, rb.answer_digest);
    assert_eq!(ra.answer_digest, rc.answer_digest);
}

/// The deadline path is fully injectable: with a pinned rate there is
/// no clock anywhere — the same deadline always buys the same fuel,
/// so the same request always exhausts at the same point.
#[test]
fn injected_deadlines_are_reproducible() {
    let mk = || {
        Server::new(ServeOptions {
            deadline: Some(DeadlineGovernor::with_rate(10)),
            ..ServeOptions::default()
        })
    };
    // Gauss–Seidel: its inexact certificate cannot preempt the run,
    // so the deadline-derived budget genuinely exhausts at runtime.
    let mut tight = request("t", wl::sor_source(), 24);
    tight.deadline_ms = Some(3); // 30 fuel: exhausts
    let mut roomy = request("r", wl::wavefront_source(), 8);
    roomy.deadline_ms = Some(50); // 500 fuel: completes

    let (s1, s2) = (mk(), mk());
    let t1 = s1.handle(&tight);
    let t2 = s2.handle(&tight);
    assert_eq!(t1.status, Status::Limit);
    assert_eq!(t1.fuel_left, t2.fuel_left, "same deadline, same exhaustion");
    assert_eq!(t1.error, t2.error);

    let r1 = s1.handle(&roomy);
    let r2 = s2.handle(&roomy);
    assert_eq!(r1.status, Status::Ok);
    assert_eq!(r1.fuel_left, r2.fuel_left);
    assert_eq!(r1.answer_digest, r2.answer_digest);

    // An explicit fuel cap tighter than the deadline wins.
    let mut both = request("b", wl::sor_source(), 24);
    both.deadline_ms = Some(1_000_000);
    both.fuel = Some(5);
    let resp = s1.handle(&both);
    assert_eq!(resp.status, Status::Limit);
    assert_eq!(resp.fuel_left, Some(0));
}

#[test]
fn batch_covers_every_status_class() {
    let server = Server::new(ServeOptions {
        ceiling: Limits {
            fuel: Some(1_000),
            mem_bytes: None,
        },
        ..ServeOptions::default()
    });
    let mut over = request("over", wl::wavefront_source(), 8);
    over.fuel = Some(100_000); // bigger than the whole pool: rejected
    let mut broken = Request::new("broken", "param n;\nlet a = ");
    broken.params.push(("n".to_string(), 4));
    // Wavefront's exact certificate proves 3 fuel cannot finish n=8:
    // rejected at admission, before any execution.
    let mut starved = request("starved", wl::wavefront_source(), 8);
    starved.fuel = Some(3);
    // Gauss–Seidel's certificate is only an upper bound, so the same
    // starvation is discovered the old way — metered, mid-run.
    let mut metered = request("metered", wl::sor_source(), 10);
    metered.fuel = Some(3);
    let ok = light_request("ok");

    let out = server.run_batch(&[ok, starved, over, broken, metered], 2);
    assert_eq!(out[0].status, Status::Ok);
    assert_eq!(out[1].status, Status::OverCertificate);
    assert_eq!(out[2].status, Status::Rejected);
    assert_eq!(out[3].status, Status::CompileError);
    assert_eq!(out[4].status, Status::Limit);
    // Statuses land on the right ids even with concurrent workers.
    assert_eq!(out[0].id, "ok");
    assert_eq!(out[1].id, "starved");
    assert_eq!(out[2].id, "over");
    assert_eq!(out[3].id, "broken");
    assert_eq!(out[4].id, "metered");
    // The wire form spells them as the CI smoke expects.
    assert_eq!(
        out.iter().map(|r| r.status.as_str()).collect::<Vec<_>>(),
        vec![
            "ok",
            "over-certificate",
            "rejected",
            "compile_error",
            "limit"
        ]
    );
    // The certificate ledger saw every admission that compiled.
    let cs = server.cert_stats();
    assert_eq!(cs.rejected, 1);
    assert!(cs.certified >= 1);
}
