//! Differential tests for the bytecode tape engine: on every workload
//! kernel, and on randomly generated well-formed expression trees, the
//! tape must be *bit-identical* to the tree-walking evaluator — same
//! arrays (to the last mantissa bit), same scalars, same instrumentation
//! counters (minus `tape_ops`, which only the tape engine counts), and
//! the same lazily raised runtime errors.

use std::collections::HashMap;

use hac_codegen::limp::{LProgram, LStmt, StoreCheck, Vm, VmCounters};
use hac_codegen::tape::{compile_tape, TapeCtx};
use hac_core::pipeline::{compile, run, CompileOptions, Engine, ExecOutput};
use hac_lang::ast::{BinOp, Expr, UnOp};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::error::RuntimeError;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;
use proptest::prelude::*;

fn buf_bits(b: &ArrayBuf) -> (Vec<(i64, i64)>, Vec<u64>) {
    (b.bounds(), b.data().iter().map(|v| v.to_bits()).collect())
}

/// Zero the tape-only counter so the rest can be compared exactly.
fn sans_tape_ops(mut c: VmCounters) -> VmCounters {
    c.tape_ops = 0;
    c
}

fn assert_outputs_identical(tape: &ExecOutput, tree: &ExecOutput, label: &str) {
    let mut tn: Vec<&String> = tape.arrays.keys().collect();
    let mut wn: Vec<&String> = tree.arrays.keys().collect();
    tn.sort();
    wn.sort();
    assert_eq!(tn, wn, "{label}: same arrays bound");
    for name in tn {
        assert_eq!(
            buf_bits(&tape.arrays[name]),
            buf_bits(&tree.arrays[name]),
            "{label}: array `{name}` bit-identical"
        );
    }
    let mut ts: Vec<(&String, u64)> = tape.scalars.iter().map(|(n, v)| (n, v.to_bits())).collect();
    let mut ws: Vec<(&String, u64)> = tree.scalars.iter().map(|(n, v)| (n, v.to_bits())).collect();
    ts.sort();
    ws.sort();
    assert_eq!(ts, ws, "{label}: scalars bit-identical");
    assert_eq!(
        sans_tape_ops(tape.counters.vm),
        sans_tape_ops(tree.counters.vm),
        "{label}: VM counters agree"
    );
    assert_eq!(
        tree.counters.vm.tape_ops, 0,
        "{label}: tree-walk ran no tape"
    );
    assert_eq!(
        tape.counters.thunked, tree.counters.thunked,
        "{label}: thunk counters agree"
    );
}

/// Compile under both engines, run both, demand identical output.
/// Returns the tape run for extra assertions.
fn diff_kernel(
    label: &str,
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
) -> ExecOutput {
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let tape = compile(
        &program,
        env,
        &CompileOptions {
            engine: Engine::Tape,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{label}: compile(tape): {e}"));
    let tree = compile(
        &program,
        env,
        &CompileOptions {
            engine: Engine::TreeWalk,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{label}: compile(tree): {e}"));
    let t = run(&tape, inputs, &funcs).unwrap_or_else(|e| panic!("{label}: run(tape): {e}"));
    let w = run(&tree, inputs, &funcs).unwrap_or_else(|e| panic!("{label}: run(tree): {e}"));
    assert_outputs_identical(&t, &w, label);
    t
}

#[test]
fn all_closed_form_kernels_agree() {
    for (label, src, n) in [
        ("wavefront", wl::wavefront_source(), 12),
        ("section5_example1", wl::section5_example1_source(), 50),
        ("recurrence", wl::recurrence_source(), 200),
        ("pascal", wl::pascal_source(), 16),
    ] {
        let env = ConstEnv::from_pairs([("n", n)]);
        diff_kernel(label, src, &env, &HashMap::new());
    }
}

#[test]
fn section5_example2_agrees() {
    let env = ConstEnv::from_pairs([("m", 7), ("n", 9)]);
    diff_kernel(
        "section5_example2",
        wl::section5_example2_source(),
        &env,
        &HashMap::new(),
    );
}

#[test]
fn vector_input_kernels_agree() {
    let n = 32;
    let env = ConstEnv::from_pairs([("n", n)]);
    let u = wl::random_vector(n, 23);
    let mut inputs = HashMap::new();
    inputs.insert("u".to_string(), u);
    for (label, src) in [
        ("deforest", wl::deforest_source()),
        ("permutation", wl::permutation_source()),
        ("histogram", wl::histogram_source()),
        ("prefix_sum", wl::prefix_sum_source()),
        ("running_max", wl::running_max_source()),
        ("convolution", wl::convolution_source()),
    ] {
        diff_kernel(label, src, &env, &inputs);
    }
}

#[test]
fn thomas_agrees() {
    let n = 40;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("d".to_string(), wl::random_vector(n, 7));
    diff_kernel("thomas", wl::thomas_source(), &env, &inputs);
}

#[test]
fn update_kernels_agree() {
    // jacobi and sor exercise the in-place `bigupd` path, where the
    // tape canonicalizes the result/base alias at compile time.
    let n = 10;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(n, n, 11));
    let jac = diff_kernel("jacobi", wl::jacobi_source(), &env, &inputs);
    assert!(jac.counters.vm.tape_ops > 0, "tape engine actually ran");
    diff_kernel("sor", wl::sor_source(), &env, &inputs);

    let (m, n) = (6, 9);
    let env = ConstEnv::from_pairs([("m", m), ("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), wl::random_matrix(m, n, 17));
    diff_kernel("row_swap", wl::row_swap_source(), &env, &inputs);
    diff_kernel("row_scale", wl::row_scale_source(), &env, &inputs);
    diff_kernel("saxpy", wl::saxpy_source(), &env, &inputs);
}

#[test]
fn matrix_input_kernels_agree() {
    let n = 8;
    let env = ConstEnv::from_pairs([("n", n)]);
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), wl::random_matrix(n, n, 31));
    inputs.insert("y".to_string(), wl::random_matrix(n, n, 37));
    diff_kernel("matmul", wl::matmul_source(), &env, &inputs);

    let mut inputs = HashMap::new();
    inputs.insert("za".to_string(), wl::random_matrix(n, n, 41));
    inputs.insert("zr".to_string(), wl::random_matrix(n, n, 43));
    inputs.insert("zb".to_string(), wl::random_matrix(n, n, 47));
    diff_kernel("lk23", wl::lk23_source(), &env, &inputs);

    let env = ConstEnv::from_pairs([("n", 24), ("m", 10)]);
    let mut inputs = HashMap::new();
    inputs.insert("u0".to_string(), wl::random_vector(24, 53));
    diff_kernel("heat1d", wl::heat1d_source(), &env, &inputs);
}

// ---------------------------------------------------------------------
// Property: random well-formed expression trees evaluate identically —
// including NaN propagation, division by zero, short-circuit `&&`/`||`,
// and out-of-bounds / unbound-name / collision error parity.
// ---------------------------------------------------------------------

/// Deterministic expression generator driven by a proptest-supplied
/// seed. Depth-bounded; every generated tree is well-formed (Mod
/// divisors are nonzero integer constants, since `mod 0` panics the
/// shared `apply_bin` under either engine).
struct Gen(wl::XorShift);

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.0.next_u64() % n
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        match self.below(10) {
            0..=2 => self.leaf(),
            3..=5 => {
                let op = self.binop();
                let lhs = self.expr(depth - 1);
                let rhs = if op == BinOp::Mod {
                    // Nonzero integer divisor: `rem_euclid(0)` panics
                    // identically under both engines, killing the test.
                    Expr::int([1, 2, 3, 5, -3][self.below(5) as usize])
                } else {
                    self.expr(depth - 1)
                };
                Expr::bin(op, lhs, rhs)
            }
            6 => Expr::Unary {
                op: [
                    UnOp::Neg,
                    UnOp::Not,
                    UnOp::Abs,
                    UnOp::Sqrt,
                    UnOp::Exp,
                    UnOp::Log,
                    UnOp::Sin,
                    UnOp::Cos,
                ][self.below(8) as usize],
                expr: Box::new(self.expr(depth - 1)),
            },
            7 => Expr::If {
                cond: Box::new(self.expr(depth - 1)),
                then: Box::new(self.expr(depth - 1)),
                els: Box::new(self.expr(depth - 1)),
            },
            8 => Expr::Let {
                binds: vec![("t".to_string(), self.expr(depth - 1))],
                body: Box::new(self.expr(depth - 1)),
            },
            _ => match self.below(4) {
                // sqrt: a builtin; hypot: a 2-arg builtin; mystery: an
                // unknown function, testing lazy UnknownFunction parity.
                0 => Expr::Call {
                    func: "sqrt".to_string(),
                    args: vec![self.expr(depth - 1)],
                },
                1 => Expr::Call {
                    func: "hypot".to_string(),
                    args: vec![self.expr(depth - 1), self.expr(depth - 1)],
                },
                2 => Expr::Call {
                    func: "mystery".to_string(),
                    args: vec![self.expr(depth - 1)],
                },
                _ => Expr::index1("u", self.expr(depth - 1)),
            },
        }
    }

    fn leaf(&mut self) -> Expr {
        match self.below(12) {
            0..=2 => Expr::int(self.below(12) as i64 - 3),
            3 => Expr::num([0.0, 1.5, -2.5, 0.5, f64::NAN, f64::INFINITY][self.below(6) as usize]),
            4..=6 => Expr::var("i"),
            7 => Expr::var("g"),
            8 => Expr::var("n"),
            // Unbound name: must fail lazily and identically.
            9 => Expr::var("nope"),
            // In-bounds affine read (u has bounds (1,8), i runs 1..=4).
            10 => Expr::index1(
                "u",
                Expr::add(Expr::var("i"), Expr::int(self.below(4) as i64)),
            ),
            // Unbound array: lazy UnboundArray parity.
            _ => Expr::index1("w", Expr::var("i")),
        }
    }

    fn binop(&mut self) -> BinOp {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::And,
            BinOp::Or,
            BinOp::Min,
            BinOp::Max,
        ][self.below(15) as usize]
    }
}

/// Wrap a generated value expression in a 1..=4 loop storing into
/// `out`, with a store subscript chosen to also exercise in-bounds,
/// out-of-bounds, and collision behaviour.
fn harness_program(value: Expr, variant: u64) -> (LProgram, bool) {
    let sub = match variant % 5 {
        0 | 1 => Expr::var("i"),
        // OOB at i = 4 (out has bounds (1,4)).
        2 => Expr::add(Expr::var("i"), Expr::int(1)),
        // OOB immediately at i = 1.
        3 => Expr::sub(Expr::var("i"), Expr::int(1)),
        // Collides at i = 3 under Monolithic checking.
        _ => Expr::add(
            Expr::bin(BinOp::Mod, Expr::var("i"), Expr::int(2)),
            Expr::int(1),
        ),
    };
    let checked = variant.is_multiple_of(2);
    let prog = LProgram {
        stmts: vec![
            LStmt::Alloc {
                array: "out".to_string(),
                bounds: vec![(1, 4)],
                fill: 0.0,
                temp: false,
                checked,
            },
            LStmt::For {
                var: "i".to_string(),
                start: 1,
                end: 4,
                step: 1,
                par: false,
                red: false,
                body: vec![LStmt::Store {
                    array: "out".to_string(),
                    subs: vec![sub],
                    value,
                    check: if checked {
                        StoreCheck::Monolithic
                    } else {
                        StoreCheck::None
                    },
                }],
            },
        ],
        result: "out".to_string(),
    };
    (prog, checked)
}

fn fresh_vm() -> Vm {
    let mut vm = Vm::new();
    let mut u = ArrayBuf::new(&[(1, 8)], 0.0);
    for i in 1..=8 {
        u.set("u", &[i], (i * i) as f64 * 0.25 - 3.0).unwrap();
    }
    vm.bind("u", u);
    vm.set_global("n", 8.0);
    vm.set_global("g", 2.5);
    vm
}

fn run_both(prog: &LProgram) -> (Result<(), RuntimeError>, Result<(), RuntimeError>) {
    let ctx = TapeCtx {
        shapes: HashMap::from([("u".to_string(), vec![(1i64, 8i64)])]),
        consts: HashMap::from([("n".to_string(), 8i64)]),
        globals: vec!["g".to_string()],
        ..TapeCtx::default()
    };
    let tape = compile_tape(prog, &ctx);

    let mut tvm = fresh_vm();
    let tr = tvm.run_tape(&tape);
    let mut wvm = fresh_vm();
    let wr = wvm.run(prog);

    match (&tr, &wr) {
        (Ok(()), Ok(())) => {
            assert_eq!(
                buf_bits(tvm.array("out").unwrap()),
                buf_bits(wvm.array("out").unwrap()),
                "result arrays bit-identical\nprog:\n{}",
                prog.render()
            );
        }
        (Err(a), Err(b)) => {
            // Debug-render comparison: NaN payloads (e.g. a NaN
            // subscript) are unequal under `PartialEq` but must still
            // count as the same error.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "identical errors\nprog:\n{}",
                prog.render()
            );
        }
        _ => panic!(
            "engines disagree: tape={tr:?} tree={wr:?}\nprog:\n{}",
            prog.render()
        ),
    }
    assert_eq!(
        sans_tape_ops(tvm.counters),
        sans_tape_ops(wvm.counters),
        "counters agree\nprog:\n{}",
        prog.render()
    );
    (tr, wr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_exprs_agree(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 1));
        let depth = 2 + (seed % 3) as u32;
        let value = g.expr(depth);
        let (prog, _) = harness_program(value, seed / 7);
        // run_both asserts parity internally; Ok/Err outcomes are both
        // legitimate for random expressions.
        let _ = run_both(&prog);
    }
}

#[test]
fn nan_propagates_identically() {
    // NaN condition is falsy through If, truthy through `||` — parity
    // for both, plus NaN arithmetic bit patterns.
    for src in [
        "if (0.0 / 0.0) then 1 else 2",
        "(0.0 / 0.0) || 0",
        "(0.0 / 0.0) && 5",
        "(0.0 / 0.0) + u!(i)",
        "1 / 0",
        "-1 / 0",
    ] {
        let value = hac_lang::parser::parse_expr(src).unwrap();
        let (prog, _) = harness_program(value, 0);
        let (t, w) = run_both(&prog);
        assert!(t.is_ok() && w.is_ok(), "{src}");
    }
    let nan = Expr::bin(BinOp::Div, Expr::num(0.0), Expr::num(0.0));
    for op in [BinOp::Min, BinOp::Max] {
        let value = Expr::bin(op, Expr::int(0), nan.clone());
        let (prog, _) = harness_program(value, 0);
        let (t, w) = run_both(&prog);
        assert!(t.is_ok() && w.is_ok(), "{op:?} with NaN");
    }
}

#[test]
fn short_circuit_skips_errors_identically() {
    // The unbound rhs must never be touched when the lhs decides.
    for (src, ok) in [
        ("0 && nope", true),
        ("1 || nope", true),
        ("1 && nope", false),
        ("0 || nope", false),
        ("(i > 9) && w!(i)", true),
        ("(i < 9) || w!(i)", true),
    ] {
        let value = hac_lang::parser::parse_expr(src).unwrap();
        let (prog, _) = harness_program(value, 1);
        let (t, w) = run_both(&prog);
        assert_eq!(t.is_ok(), ok, "{src}: tape");
        assert_eq!(w.is_ok(), ok, "{src}: tree");
    }
}

#[test]
fn store_error_paths_agree() {
    // Variants 2/3 go out of bounds, 4 collides under Monolithic; all
    // must fail identically (error value and counters) on both engines.
    for variant in [2u64, 3, 4] {
        let value = Expr::var("i");
        let (prog, checked) = harness_program(value, variant);
        let (t, _) = run_both(&prog);
        match variant {
            2 | 3 => assert!(
                matches!(t, Err(RuntimeError::OutOfBounds { .. })),
                "variant {variant}: {t:?}"
            ),
            _ => {
                assert!(checked);
                assert!(
                    matches!(t, Err(RuntimeError::WriteCollision { .. })),
                    "variant {variant}: {t:?}"
                );
            }
        }
    }
}

#[test]
fn division_by_zero_in_subscript_agrees() {
    // `u!(1/0)` → infinite subscript → NonIntegerSubscript on both
    // engines (the dynamic path's `as_int` parity).
    let value = Expr::index1("u", Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0)));
    let (t, _) = run_both_value(value);
    assert!(matches!(t, Err(RuntimeError::NonIntegerSubscript { .. })));
}

fn run_both_value(value: Expr) -> (Result<(), RuntimeError>, Result<(), RuntimeError>) {
    let (prog, _) = harness_program(value, 0);
    run_both(&prog)
}
