//! Differential tests for the fused vector-kernel lowering: the
//! fusion pass must be *unobservable* except in wall-clock time. With
//! and without `Op::VecLoop` superinstructions, every run must produce
//! bit-identical array values, the same error payloads, the same work
//! counters (including `tape_ops`, which fused loops bulk-charge by
//! the closed-form contract in `hac_codegen::tape`), and the same
//! remaining fuel — on the sequential tape and on ParTape at 1/2/4/8
//! threads, under tight fuel and memory budgets, and with injected
//! worker faults. The scalar tape is the oracle; fusion is pure
//! mechanism.

use std::collections::HashMap;

use hac_codegen::fuse::fuse_tape;
use hac_codegen::limp::{LProgram, LStmt, StoreCheck, Vm, VmCounters};
use hac_codegen::partape::plan_tape;
use hac_codegen::tape::{compile_tape, TapeCtx};
use hac_core::pipeline::{
    compile, run_with_options, CompileOptions, Compiled, Engine, ExecOutput, RunOptions,
};
use hac_lang::ast::{BinOp, Expr, UnOp};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::governor::{FaultPlan, Limits, Meter};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn buf_bits(b: &ArrayBuf) -> (Vec<(i64, i64)>, Vec<u64>) {
    (b.bounds(), b.data().iter().map(|v| v.to_bits()).collect())
}

fn sans_faults(mut c: VmCounters) -> VmCounters {
    c.engine_faults = 0;
    c
}

/// Everything a run can show the outside world, collapsed to an
/// equatable value. On success: sorted array bits, sorted scalar bits,
/// the full VM counter block (engine faults zeroed — recovery count is
/// scheduling-dependent), and fuel left. On failure: the
/// Debug-rendered error, for payload parity.
type Snapshot = Result<
    (
        Vec<(String, (Vec<(i64, i64)>, Vec<u64>))>,
        Vec<(String, u64)>,
        VmCounters,
        Option<u64>,
    ),
    String,
>;

fn snapshot(r: &Result<ExecOutput, hac_runtime::RuntimeError>) -> Snapshot {
    match r {
        Ok(out) => {
            let mut arrays: Vec<_> = out
                .arrays
                .iter()
                .map(|(n, b)| (n.clone(), buf_bits(b)))
                .collect();
            arrays.sort();
            let mut scalars: Vec<_> = out
                .scalars
                .iter()
                .map(|(n, v)| (n.clone(), v.to_bits()))
                .collect();
            scalars.sort();
            Ok((arrays, scalars, sans_faults(out.counters.vm), out.fuel_left))
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

/// Harness hermeticity: every run driver calls this first, so the
/// whole binary ignores an ambient `HAC_FAULT_PLAN` (the CI
/// fault-injection job exports one for CLI smoke runs). A test that
/// wants faults injects them explicitly via `RunOptions::faults` /
/// `Vm::with_faults`, which always override the environment.
fn hermetic() {
    hac_codegen::suppress_env_fault_plan();
}

fn build(program: &hac_lang::ast::Program, env: &ConstEnv, engine: Engine, fuse: bool) -> Compiled {
    compile(
        program,
        env,
        &CompileOptions {
            engine,
            fuse,
            ..CompileOptions::default()
        },
    )
    .unwrap()
}

/// Compile `src` with and without fusion on both tape engines, run
/// every build under `limits` at every thread count, and demand that
/// the fused runs match the unfused sequential-tape oracle exactly.
/// Returns true when the fused build actually contains a fused loop
/// (so callers can assert the suite is not vacuously passing).
fn diff_fusion(
    label: &str,
    src: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
    limits: Limits,
) -> bool {
    let program = parse_program(src).unwrap();
    let funcs = FuncTable::new();
    let tape_plain = build(&program, env, Engine::Tape, false);
    let tape_fused = build(&program, env, Engine::Tape, true);
    let par_plain = build(&program, env, Engine::ParTape, false);
    let par_fused = build(&program, env, Engine::ParTape, true);

    let opts = |threads| RunOptions {
        threads: Some(threads),
        limits,
        faults: None,
        ceiling: None,
    };
    let want = snapshot(&run_with_options(&tape_plain, inputs, &funcs, &opts(1)));
    let got = snapshot(&run_with_options(&tape_fused, inputs, &funcs, &opts(1)));
    assert_eq!(got, want, "{label} {limits:?}: fused tape vs scalar tape");
    for threads in THREADS {
        let plain = snapshot(&run_with_options(
            &par_plain,
            inputs,
            &funcs,
            &opts(threads),
        ));
        let fused = snapshot(&run_with_options(
            &par_fused,
            inputs,
            &funcs,
            &opts(threads),
        ));
        assert_eq!(
            plain, want,
            "{label} {limits:?}: scalar partape @{threads}t vs scalar tape"
        );
        assert_eq!(
            fused, want,
            "{label} {limits:?}: fused partape @{threads}t vs scalar tape"
        );
    }

    let fused_somewhere = |c: &Compiled| {
        c.report
            .arrays
            .iter()
            .flat_map(|a| a.fusion.iter())
            .chain(c.report.updates.iter().flat_map(|u| u.fusion.iter()))
            .any(|f| f.contains(": fused ("))
    };
    assert!(
        !fused_somewhere(&tape_plain),
        "{label}: fuse:false must not run the pass"
    );
    fused_somewhere(&tape_fused)
}

fn fuel(n: u64) -> Limits {
    Limits {
        fuel: Some(n),
        mem_bytes: None,
    }
}

fn mem(bytes: u64) -> Limits {
    Limits {
        fuel: None,
        mem_bytes: Some(bytes),
    }
}

/// Every workload kernel under a fuel ladder straddling "trips before
/// the loop", "exhausts mid-kernel", and "completes", plus tight and
/// roomy memory caps. At least half the kernels must genuinely fuse a
/// loop, or the differential property is vacuous.
#[test]
fn kernels_agree_fused_vs_unfused_under_budgets() {
    let kernels: Vec<(&str, &str, ConstEnv, HashMap<String, ArrayBuf>)> = vec![
        (
            "jacobi_step",
            wl::jacobi_step_source(),
            ConstEnv::from_pairs([("n", 10)]),
            HashMap::from([("a".to_string(), wl::random_matrix(10, 10, 13))]),
        ),
        (
            "relaxation",
            wl::relaxation_source(),
            ConstEnv::from_pairs([("n", 32)]),
            HashMap::from([("u".to_string(), wl::random_vector(32, 41))]),
        ),
        (
            "jacobi",
            wl::jacobi_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 11))]),
        ),
        (
            "sor",
            wl::sor_source(),
            ConstEnv::from_pairs([("n", 8)]),
            HashMap::from([("a".to_string(), wl::random_matrix(8, 8, 17))]),
        ),
        (
            "matmul",
            wl::matmul_source(),
            ConstEnv::from_pairs([("n", 6)]),
            HashMap::from([
                ("x".to_string(), wl::random_matrix(6, 6, 31)),
                ("y".to_string(), wl::random_matrix(6, 6, 37)),
            ]),
        ),
        (
            "saxpy",
            wl::saxpy_source(),
            ConstEnv::from_pairs([("m", 4), ("n", 40)]),
            HashMap::from([("a".to_string(), wl::random_matrix(4, 40, 3))]),
        ),
        (
            "convolution",
            wl::convolution_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 37))]),
        ),
        (
            "deforest",
            wl::deforest_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 23))]),
        ),
        (
            "prefix_sum",
            wl::prefix_sum_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 31))]),
        ),
        (
            "permutation",
            wl::permutation_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 29))]),
        ),
        (
            "wavefront",
            wl::wavefront_source(),
            ConstEnv::from_pairs([("n", 10)]),
            HashMap::new(),
        ),
        (
            "thomas",
            wl::thomas_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("d".to_string(), wl::random_vector(24, 7))]),
        ),
        (
            "dot",
            wl::dot_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([
                ("a".to_string(), wl::random_vector(24, 43)),
                ("b".to_string(), wl::random_vector(24, 47)),
            ]),
        ),
        (
            "matvec",
            wl::matvec_source(),
            ConstEnv::from_pairs([("n", 12)]),
            HashMap::from([
                ("m".to_string(), wl::random_matrix(12, 12, 53)),
                ("x".to_string(), wl::random_vector(12, 59)),
            ]),
        ),
        (
            "running_max",
            wl::running_max_source(),
            ConstEnv::from_pairs([("n", 24)]),
            HashMap::from([("u".to_string(), wl::random_vector(24, 67))]),
        ),
        (
            // Stride-2 reads against a unit-stride destination.
            "downsample",
            DOWNSAMPLE_SOURCE,
            ConstEnv::from_pairs([("n", 16)]),
            HashMap::from([("u".to_string(), wl::random_vector(32, 71))]),
        ),
        (
            // Stride-2 destinations (two interleaved clauses).
            "interleave",
            INTERLEAVE_SOURCE,
            ConstEnv::from_pairs([("n", 16)]),
            HashMap::from([("u".to_string(), wl::random_vector(16, 73))]),
        ),
    ];
    let total = kernels.len();
    let mut fused = 0usize;
    for (label, src, env, inputs) in &kernels {
        let mut any = false;
        for f in [0, 1, 7, 23, 101, 1009, 20011] {
            any |= diff_fusion(label, src, env, inputs, fuel(f));
        }
        any |= diff_fusion(label, src, env, inputs, Limits::unlimited());
        for m in [0, 64, 1 << 30] {
            any |= diff_fusion(label, src, env, inputs, mem(m));
        }
        if any {
            fused += 1;
        }
    }
    assert!(
        fused >= 9,
        "fusion must actually engage on the affine kernels: {fused} of {total} fused"
    );
}

/// `d!i := u!(2i) - u!(2i-1)`: stride-2 source streams feeding a
/// unit-stride destination — the strided `ReadLin` contract.
const DOWNSAMPLE_SOURCE: &str = r#"
param n;
input u (1,2*n);
let d = array (1,n) [ i := u!(2*i) - u!(2*i-1) | i <- [1..n] ];
result d;
"#;

/// Two interleaved clauses with stride-2 destination windows.
const INTERLEAVE_SOURCE: &str = r#"
param n;
input u (1,n);
let d = array (1,2*n)
   ([ 2*i-1 := u!i | i <- [1..n] ] ++
    [ 2*i := u!i + 1.0 | i <- [1..n] ]);
result d;
"#;

/// Injected worker panics and allocation failures with fusion on: the
/// answer, counters, and meter state must match the unfused fault-free
/// run bit-for-bit; only the recovery counter may move.
#[test]
fn fused_runs_absorb_injected_faults_identically() {
    let env = ConstEnv::from_pairs([("n", 16)]);
    let inputs = HashMap::from([("a".to_string(), wl::random_matrix(16, 16, 61))]);
    let program = parse_program(wl::jacobi_step_source()).unwrap();
    let funcs = FuncTable::new();
    let plain = build(&program, &env, Engine::ParTape, false);
    let fused = build(&program, &env, Engine::ParTape, true);

    // The harness is hermetic to an ambient `HAC_FAULT_PLAN`, so the
    // default (no explicit plan) is a genuinely fault-free baseline.
    let baseline = snapshot(&run_with_options(
        &plain,
        &inputs,
        &funcs,
        &RunOptions {
            threads: Some(4),
            limits: Limits::unlimited(),
            faults: None,
            ceiling: None,
        },
    ));
    for spec in ["", "r0c0:panic", "r0c1:allocfail", "seed:1009"] {
        for threads in THREADS {
            let got = snapshot(&run_with_options(
                &fused,
                &inputs,
                &funcs,
                &RunOptions {
                    threads: Some(threads),
                    limits: Limits::unlimited(),
                    faults: Some(FaultPlan::parse(spec).unwrap()),
                    ceiling: None,
                },
            ));
            assert_eq!(
                got, baseline,
                "fused @{threads}t under fault plan `{spec}` vs unfused fault-free run"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property: on randomly generated parallel affine loops — the shapes
// the fusion pass targets — fusing the compiled tape changes nothing
// observable at any fuel budget or thread count. The generator mixes
// fusable bodies (straight-line arithmetic over stride-1 reads) with
// shapes the pass must decline (conditionals, calls), so both the
// fused path and the decline path are exercised against the oracle.
// ---------------------------------------------------------------------

struct Gen(wl::XorShift);

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.0.next_u64() % n
    }

    fn expr(&mut self, depth: u32, fusable: bool) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        match self.below(8) {
            0..=1 => self.leaf(),
            2..=4 => {
                let op = [
                    BinOp::Add,
                    BinOp::Mul,
                    BinOp::Sub,
                    BinOp::Div,
                    BinOp::Min,
                    BinOp::Max,
                ][self.below(6) as usize];
                Expr::bin(
                    op,
                    self.expr(depth - 1, fusable),
                    self.expr(depth - 1, fusable),
                )
            }
            5 => Expr::Unary {
                op: [UnOp::Neg, UnOp::Abs, UnOp::Sqrt][self.below(3) as usize],
                expr: Box::new(self.expr(depth - 1, fusable)),
            },
            6 if !fusable => Expr::If {
                cond: Box::new(self.expr(depth - 1, fusable)),
                then: Box::new(self.expr(depth - 1, fusable)),
                els: Box::new(self.expr(depth - 1, fusable)),
            },
            7 if !fusable => Expr::Call {
                func: "sqrt".to_string(),
                args: vec![self.expr(depth - 1, fusable)],
            },
            _ => self.leaf(),
        }
    }

    fn leaf(&mut self) -> Expr {
        match self.below(8) {
            0..=1 => Expr::int(self.below(9) as i64 - 2),
            2..=3 => Expr::var("i"),
            4 => Expr::var("g"),
            _ => Expr::index1(
                "u",
                Expr::add(Expr::var("i"), Expr::int(self.below(3) as i64)),
            ),
        }
    }
}

/// A proven-parallel 1..=8 loop storing the generated value — exactly
/// the shape `fuse_tape` targets when the body is straight-line.
fn harness_program(value: Expr) -> LProgram {
    LProgram {
        stmts: vec![
            LStmt::Alloc {
                array: "out".to_string(),
                bounds: vec![(1, 8)],
                fill: 0.0,
                temp: false,
                checked: false,
            },
            LStmt::For {
                var: "i".to_string(),
                start: 1,
                end: 8,
                step: 1,
                par: true,
                red: false,
                body: vec![LStmt::Store {
                    array: "out".to_string(),
                    subs: vec![Expr::var("i")],
                    value,
                    check: StoreCheck::None,
                }],
            },
        ],
        result: "out".to_string(),
    }
}

fn fresh_vm(fuel: u64) -> Vm {
    hermetic();
    let mut vm = Vm::new();
    let mut u = ArrayBuf::new(&[(1, 12)], 0.0);
    for i in 1..=12 {
        u.set("u", &[i], (i * i) as f64 * 0.25 - 3.0).unwrap();
    }
    vm.bind("u", u);
    vm.set_global("n", 8.0);
    vm.set_global("g", 2.5);
    vm.with_meter(Meter::new(Limits {
        fuel: Some(fuel),
        mem_bytes: None,
    }));
    vm
}

/// One generated loop, one fuel budget: the fused tape must match the
/// scalar tape on outcome, error payload, remaining fuel, output bits,
/// and the *complete* counter block — `tape_ops` included, because the
/// bulk-charge contract says a fused loop reports the same dispatch
/// count the scalar loop would have.
fn diff_random_fusion(prog: &LProgram, fuel: u64) {
    let ctx = TapeCtx {
        shapes: HashMap::from([("u".to_string(), vec![(1i64, 12i64)])]),
        consts: HashMap::from([("n".to_string(), 8i64)]),
        globals: vec!["g".to_string()],
        ..TapeCtx::default()
    };
    let scalar = compile_tape(prog, &ctx);
    let mut fused = scalar.clone();
    let decisions = fuse_tape(&mut fused);
    assert_eq!(decisions.len(), 1, "one loop, one verdict");

    let mut svm = fresh_vm(fuel);
    let sr = svm.run_tape(&scalar).map_err(|e| format!("{e:?}"));
    let sleft = svm.take_meter().fuel_left();

    let label = |eng: &str| format!("fuel={fuel} {eng}\nprog:\n{}", prog.render());

    let mut fvm = fresh_vm(fuel);
    let fr = fvm.run_tape(&fused).map_err(|e| format!("{e:?}"));
    let fleft = fvm.take_meter().fuel_left();
    assert_eq!(fr, sr, "{}", label("fused vs scalar tape: outcome"));
    assert_eq!(fleft, sleft, "{}", label("fused vs scalar tape: fuel left"));
    if fr.is_ok() {
        assert_eq!(
            buf_bits(fvm.array("out").unwrap()),
            buf_bits(svm.array("out").unwrap()),
            "{}",
            label("fused vs scalar tape: bits")
        );
    }
    assert_eq!(
        fvm.counters,
        svm.counters,
        "{}",
        label("fused vs scalar tape: counters (tape_ops included)")
    );

    let plan = plan_tape(&fused);
    for threads in THREADS {
        let mut pvm = fresh_vm(fuel);
        let pr = pvm
            .run_partape(&fused, &plan, threads)
            .map_err(|e| format!("{e:?}"));
        let pleft = pvm.take_meter().fuel_left();
        assert_eq!(
            pr,
            sr,
            "{}",
            label(&format!("fused partape@{threads} outcome"))
        );
        assert_eq!(
            pleft,
            sleft,
            "{}",
            label(&format!("fused partape@{threads} fuel left"))
        );
        if pr.is_ok() {
            assert_eq!(
                buf_bits(pvm.array("out").unwrap()),
                buf_bits(svm.array("out").unwrap()),
                "{}",
                label(&format!("fused partape@{threads} bits"))
            );
        }
        assert_eq!(
            sans_faults(pvm.counters),
            sans_faults(svm.counters),
            "{}",
            label(&format!("fused partape@{threads} counters"))
        );
    }
}

/// A sequential 1..=8 loop carrying `out!(i-1)` — the reduction shape.
/// `acc_left` picks the side of the fold the carried cell sits on:
/// only acc-left folds over `+`/`min`/`max` classify as reduction
/// kernels; everything else (acc-right, `-`, `/`, `*`) must run on the
/// order-faithful generic micro-kernel — bit-identically either way.
/// The `red` mark is an enabling annotation, so setting it on a
/// non-reassociable fold must never change observable behaviour.
fn harness_reduction_program(op: BinOp, acc_left: bool, e: Expr) -> LProgram {
    let acc = Expr::index1("out", Expr::sub(Expr::var("i"), Expr::int(1)));
    let value = if acc_left {
        Expr::bin(op, acc, e)
    } else {
        Expr::bin(op, e, acc)
    };
    LProgram {
        stmts: vec![
            LStmt::Alloc {
                array: "out".to_string(),
                bounds: vec![(0, 8)],
                fill: 1.0,
                temp: false,
                checked: false,
            },
            LStmt::For {
                var: "i".to_string(),
                start: 1,
                end: 8,
                step: 1,
                par: false,
                red: true,
                body: vec![LStmt::Store {
                    array: "out".to_string(),
                    subs: vec![Expr::var("i")],
                    value,
                    check: StoreCheck::None,
                }],
            },
        ],
        result: "out".to_string(),
    }
}

/// The deterministic anchor for the sweep below: the classifying
/// shapes land on their named kernels, and the carried fold keeps its
/// kernel overlay out of ParTape regions (red ⟹ not a region).
#[test]
fn reduction_harness_classifies_as_expected() {
    let u_at = |off: i64| Expr::index1("u", Expr::add(Expr::var("i"), Expr::int(off)));
    let kernel = |op, acc_left, e| {
        let prog = harness_reduction_program(op, acc_left, e);
        let ctx = TapeCtx {
            shapes: HashMap::from([("u".to_string(), vec![(1i64, 12i64)])]),
            ..TapeCtx::default()
        };
        let mut tape = compile_tape(&prog, &ctx);
        let decisions = fuse_tape(&mut tape);
        assert!(
            !plan_tape(&tape).has_regions(),
            "a carried fold must never become a parallel region"
        );
        decisions[0].kernel.clone().unwrap()
    };
    assert_eq!(kernel(BinOp::Add, true, u_at(0)), "running sum");
    assert_eq!(kernel(BinOp::Min, true, u_at(0)), "running min");
    assert_eq!(kernel(BinOp::Add, true, Expr::mul(u_at(0), u_at(1))), "dot");
    // Acc-on-right and non-reassociable ops fall back to the
    // order-faithful generic micro-kernel.
    assert_eq!(kernel(BinOp::Add, false, u_at(0)), "generic micro-kernel");
    assert_eq!(kernel(BinOp::Sub, true, u_at(0)), "generic micro-kernel");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn random_affine_loops_fuse_without_observable_change(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 1));
        let depth = 2 + (seed % 3) as u32;
        // Odd seeds generate strictly fusable bodies; even seeds mix in
        // conditionals and calls so the decline path is covered too.
        let prog = harness_program(g.expr(depth, seed % 2 == 1));
        for fuel in [0, 1, 2, 3, 5, 9, (seed % 40), 10_000] {
            diff_random_fusion(&prog, fuel);
        }
    }

    /// Random carried folds: every generated reduction loop — whether
    /// it lands on a named reduction kernel, the generic micro-kernel,
    /// or a decline — must pin exact `tape_ops` and fuel parity with
    /// the scalar tape at every budget, including ones that exhaust
    /// mid-kernel (fuel 2..9 lands inside the 8-trip loop).
    #[test]
    fn random_reduction_loops_fuse_without_observable_change(seed in any::<u64>()) {
        let mut g = Gen(wl::XorShift::new(seed | 3));
        let op = [
            BinOp::Add,
            BinOp::Min,
            BinOp::Max,
            BinOp::Sub,
            BinOp::Div,
            BinOp::Mul,
        ][g.below(6) as usize];
        // Mostly acc-left (the classifying shape); sometimes acc-right.
        let acc_left = g.below(4) > 0;
        let depth = 1 + (seed % 2) as u32;
        let e = g.expr(depth, seed % 2 == 1);
        let prog = harness_reduction_program(op, acc_left, e);
        for fuel in [0, 1, 2, 3, 5, 9, (seed % 40), 10_000] {
            diff_random_fusion(&prog, fuel);
        }
    }
}
