//! Byte-level fuzz of the daemon's JSON-lines protocol: arbitrary
//! bytes, truncated JSON, pathological nesting, and oversized lines
//! are thrown at a loopback daemon, and the armor contract is asserted
//! for every stimulus:
//!
//!   * the daemon never panics and never hangs (a 30-second client
//!     deadline converts a hang into a test failure),
//!   * every non-empty garbage line gets exactly one structured JSON
//!     response (`status` present) — the connection survives and a
//!     well-formed sentinel request sent right after is still served
//!     with `status:"ok"`,
//!   * after the whole barrage, the `stats` ledger shows zero
//!     recovered panics and the daemon shuts down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use hac::serve::daemon::{self, Daemon, DaemonOptions};
use hac::serve::{Request, ServeOptions, Server};
use hac_runtime::governor::FaultPlan;
use proptest::collection;
use proptest::prelude::*;

const RECURRENCE: &str = "param n;\nletrec* a = array (1,n) \
    ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n";

/// Keep lines small so the fuzz exercises `line-too-long` cheaply.
const MAX_LINE: usize = 1024;

fn sentinel(case: usize) -> Request {
    let mut r = Request::new(format!("sentinel-{case}"), RECURRENCE);
    r.params.push(("n".to_string(), 4));
    r.fuel = Some(100_000);
    r
}

fn spawn_daemon() -> Daemon {
    let server = Server::new(ServeOptions {
        faults: Some(FaultPlan::default()),
        ..ServeOptions::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    daemon::spawn(
        Arc::new(server),
        listener,
        DaemonOptions {
            max_line_bytes: MAX_LINE,
            ..DaemonOptions::default()
        },
    )
    .expect("spawn daemon")
}

/// Expand one generated `(kind, bytes, n)` triple into a stimulus blob
/// (newline appended by the driver).
fn blob(kind: u8, bytes: &[u8], n: usize) -> Vec<u8> {
    match kind {
        // Raw bytes: embedded newlines, invalid UTF-8, control chars.
        0 => bytes.to_vec(),
        // A truncated but otherwise valid request: always malformed
        // JSON (the closing brace is cut off).
        1 => {
            let full = sentinel(usize::MAX).to_json().to_string().into_bytes();
            let cut = full.len() - 1 - (n % (full.len() / 2));
            full[..cut].to_vec()
        }
        // Pathological nesting: past the parser's depth cap (or the
        // line cap, when long enough — both must answer structurally).
        2 => b"[".repeat(50 * n.max(2)),
        // Oversized line: always past `max_line_bytes`.
        3 => b"y".repeat(MAX_LINE + 1 + n),
        // Valid JSON that is not a request object.
        4 => format!("[{n},2,3]").into_bytes(),
        // A request object missing its required fields.
        _ => b"{\"id\":\"q\"}".to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn garbage_bytes_get_structured_answers_and_never_kill_the_daemon(
        stimuli in collection::vec(
            (0u8..6u8, collection::vec(any::<u8>(), 0..120), 1usize..40usize),
            1..5,
        )
    ) {
        let daemon = spawn_daemon();
        for (case, (kind, bytes, n)) in stimuli.iter().enumerate() {
            let stream = TcpStream::connect(daemon.addr()).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .expect("hang guard");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut out = stream;
            out.write_all(&blob(*kind, bytes, *n)).expect("send blob");
            out.write_all(b"\n").expect("send newline");
            let probe = sentinel(case);
            writeln!(out, "{}", probe.to_json()).expect("send sentinel");
            // Read until the sentinel's response: every line before it
            // must be a structured rejection, and the sentinel itself
            // must be served — garbage never desynchronizes or kills
            // the connection.
            let marker = format!("\"id\":\"sentinel-{case}\"");
            let mut saw_sentinel = false;
            for _ in 0..64 {
                let mut line = String::new();
                let got = reader.read_line(&mut line).expect("recv");
                prop_assert!(got > 0, "kind {}: EOF before the sentinel response", kind);
                if line.contains(&marker) {
                    prop_assert!(
                        line.contains("\"status\":\"ok\""),
                        "kind {}: sentinel not served: {}", kind, line
                    );
                    saw_sentinel = true;
                    break;
                }
                let parsed = hac::serve::json::parse(line.trim_end());
                let structured = parsed
                    .as_ref()
                    .ok()
                    .and_then(|v| v.get("status"))
                    .is_some();
                prop_assert!(
                    structured,
                    "kind {}: unstructured reply to garbage: {}", kind, line
                );
            }
            prop_assert!(saw_sentinel, "kind {}: sentinel response never arrived", kind);
        }

        // The barrage is over: no panic was recovered (garbage must be
        // rejected, not crash handlers), and shutdown is clean.
        let stream = TcpStream::connect(daemon.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut out = stream;
        out.write_all(b"{\"control\":\"stats\"}\n").expect("stats");
        let mut stats = String::new();
        reader.read_line(&mut stats).expect("stats reply");
        prop_assert!(
            stats.contains("\"panics_recovered\":0"),
            "garbage crashed a handler: {}", stats
        );
        out.write_all(b"{\"control\":\"shutdown\"}\n").expect("shutdown");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("ack");
        prop_assert!(ack.contains("\"ok\":true"), "unclean shutdown: {}", ack);
        daemon.join().expect("daemon exits cleanly");
    }
}
